// WAL file framing and torn-tail-tolerant scanning.
//
// A log file is an 8-byte magic ("XIAWAL01") followed by frames:
//
//   u32 payload_len | u32 crc32(payload) | payload bytes
//
// Appends go through the frame encoder; on recovery, ScanLogFile walks
// the frames and *stops* at the first one that is truncated or fails its
// CRC. That is the expected shape of a crash mid-append (a torn tail),
// so it is reported as salvage information, not as an error — the
// recovery manager truncates the file back to the last good frame and
// carries on. Only a missing/forged magic is a hard error: that means
// the file is not a WAL at all.

#ifndef XIA_WAL_LOG_FILE_H_
#define XIA_WAL_LOG_FILE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace xia::wal {

/// First 8 bytes of every WAL file.
inline constexpr char kWalMagic[8] = {'X', 'I', 'A', 'W', 'A', 'L', '0', '1'};

/// Upper bound on a single frame payload; a length field above this is
/// treated as tail corruption rather than an allocation request.
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

/// Appends one `len | crc | payload` frame to `out`.
void AppendFrame(std::string_view payload, std::string* out);

/// Outcome of parsing one frame out of a byte range.
enum class FrameParse : uint8_t {
  kFrame,     ///< *payload holds the next CRC-verified frame payload
  kNeedMore,  ///< the bytes end mid-frame (torn tail / still being written)
  kCorrupt,   ///< a complete frame is present but fails its checks
};

/// Parses the frame starting at `*pos` inside `data`. On kFrame, advances
/// `*pos` past the frame and points *payload into `data`; on kNeedMore /
/// kCorrupt, leaves `*pos` untouched and fills *reason. The distinction
/// matters to callers: a reader tailing a live log treats kNeedMore as
/// "wait for the writer", while kCorrupt on a fully-written region is
/// real corruption.
FrameParse ParseNextFrame(std::string_view data, size_t* pos,
                          std::string_view* payload, std::string* reason);

/// Result of scanning a WAL file up to the first bad frame.
struct ScannedLog {
  /// Payloads of every frame that passed its CRC, in file order.
  std::vector<std::string> payloads;
  /// File offset just past the last good frame (magic-only file: 8).
  uint64_t valid_bytes = 0;
  /// Bytes after `valid_bytes` that were abandoned as a torn tail.
  uint64_t discarded_bytes = 0;
  /// True if the scan stopped before end-of-file.
  bool torn_tail = false;
  /// Human-readable reason the scan stopped ("crc mismatch", ...).
  std::string tail_reason;
};

/// Scans `path`, salvaging every intact frame. kNotFound if the file
/// does not exist; kParseError if 8+ bytes are present but the magic is
/// wrong. Truncated magic and torn/corrupt frames are *not* errors —
/// they are reported via the ScannedLog salvage fields.
Result<ScannedLog> ScanLogFile(const std::string& path);

/// Atomically (re)creates `path` as an empty WAL (magic only).
Status InitLogFile(const std::string& path);

/// Truncates `path` to `bytes` (used to cut a torn tail after salvage).
Status TruncateLogFile(const std::string& path, uint64_t bytes);

}  // namespace xia::wal

#endif  // XIA_WAL_LOG_FILE_H_
