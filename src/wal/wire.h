// Little-endian wire encoding helpers shared by the WAL record codec, the
// log frame format, and the checkpoint manifest/catalog files. All
// integers are little-endian; strings are u32 length + bytes — the same
// conventions as the snapshot format, kept byte-compatible so checksums
// stay portable across platforms.

#ifndef XIA_WAL_WIRE_H_
#define XIA_WAL_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace xia::wal {

inline void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

inline void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

/// Cursor-style decoding over a byte buffer; every Get* returns false on
/// underrun and leaves the cursor unspecified (callers bail out).
struct WireReader {
  std::string_view data;
  size_t pos = 0;

  bool GetU8(uint8_t* v) {
    if (pos + 1 > data.size()) return false;
    *v = static_cast<uint8_t>(data[pos++]);
    return true;
  }

  bool GetU32(uint32_t* v) {
    if (pos + 4 > data.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<unsigned char>(data[pos + i]))
            << (8 * i);
    }
    pos += 4;
    return true;
  }

  bool GetU64(uint64_t* v) {
    if (pos + 8 > data.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<unsigned char>(data[pos + i]))
            << (8 * i);
    }
    pos += 8;
    return true;
  }

  bool GetString(std::string* s) {
    uint32_t len = 0;
    if (!GetU32(&len)) return false;
    if (pos + len > data.size()) return false;
    s->assign(data.data() + pos, len);
    pos += len;
    return true;
  }

  bool AtEnd() const { return pos == data.size(); }
};

}  // namespace xia::wal

#endif  // XIA_WAL_WIRE_H_
