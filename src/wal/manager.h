// WAL manager: data-dir layout, checkpointing, and ARIES-lite recovery.
//
// A data directory holds:
//
//   MANIFEST                 framed {checkpoint_lsn, file flags}; replaced
//                            atomically — its rename IS the checkpoint
//                            commit point
//   wal.log                  the append-only log (log_file.h framing)
//   snapshot-<lsn>.xia       store checkpoint (snapshot v2 format)
//   catalog-<lsn>.xia        real-index definitions at the checkpoint
//
// Checkpoint protocol (caller must serialize against mutations):
//   1. Sync the writer (everything staged becomes durable).
//   2. Write snapshot-<lsn> and catalog-<lsn> atomically (lsn = last
//      appended LSN).
//   3. Atomically replace MANIFEST pointing at them — the commit point.
//   4. Reset wal.log to empty; delete stale versioned files.
// A crash in any window recovers correctly: before step 3 the old
// manifest pairs with a log that still holds everything since the old
// checkpoint; after step 3 the new snapshot pairs with a log whose
// pre-checkpoint records are skipped by LSN filtering (idempotent
// replay); LSNs keep increasing across checkpoints, so replay of a
// stale tail can never double-apply.
//
// Recovery (Open) rebuilds state in a *staging* store/catalog — the
// caller's objects are untouched until the very end, when the staging
// store is swapped in and the staging catalog's physical indexes are
// adopted (stage-and-swap, like snapshot v2 loading). A torn log tail is
// salvaged, truncated, and reported, never surfaced as an error; only a
// manifest/snapshot/catalog file that fails its checksum — files that
// are only ever replaced atomically — reports kDataLoss.

#ifndef XIA_WAL_MANAGER_H_
#define XIA_WAL_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "engine/executor.h"
#include "fault/deadline.h"
#include "storage/catalog.h"
#include "storage/document_store.h"
#include "storage/statistics.h"
#include "util/status.h"
#include "wal/writer.h"

namespace xia::wal {

/// What Recover() did, for logs/obs and the `wal status` shell command.
struct RecoveryReport {
  /// True when the data dir was missing/empty and was initialized fresh.
  bool fresh_start = false;
  /// True when a torn tail was cut off the log.
  bool salvaged = false;
  uint64_t checkpoint_lsn = 0;
  uint64_t first_replayed_lsn = 0;
  uint64_t last_replayed_lsn = 0;
  uint64_t records_replayed = 0;
  /// Records skipped as already covered by the checkpoint (lsn filter).
  uint64_t records_skipped = 0;
  /// Log bytes kept (up to the last intact frame).
  uint64_t bytes_salvaged = 0;
  /// Torn-tail bytes truncated away.
  uint64_t bytes_discarded = 0;
  double seconds = 0;

  std::string ToString() const;
};

/// Point-in-time WAL state for `wal status`.
struct WalStatus {
  std::string data_dir;
  FsyncPolicy policy = FsyncPolicy::kAlways;
  uint64_t next_lsn = 1;
  uint64_t durable_lsn = 0;
  uint64_t checkpoint_lsn = 0;
  uint64_t appended_records = 0;
  uint64_t log_bytes = 0;
  uint64_t fsyncs = 0;
  uint64_t checkpoints = 0;
  /// Replication epoch this node's log belongs to (1 until a promotion
  /// ever happens) and the barrier LSN where that epoch began (0 for the
  /// initial epoch).
  uint64_t repl_epoch = 1;
  uint64_t epoch_start_lsn = 0;

  std::string ToString() const;
};

struct WalManagerOptions {
  WalWriterOptions writer;
};

/// Position of a log tail-reader (the replication streamer). A fresh
/// cursor (all zeros) self-initializes on the first ReadTail: epoch 0
/// never matches a live log (epochs start at 1), so the offset snaps to
/// just past the magic.
struct TailCursor {
  /// Log-file incarnation the offset refers to; every checkpoint reset
  /// (and checkpoint install) starts a new incarnation.
  uint64_t log_epoch = 0;
  /// File offset of the first unread byte within that incarnation.
  uint64_t offset = 0;
  /// Lowest LSN the reader still needs. Records below it (possible after
  /// a reset re-read) are skipped, which is what makes tailing idempotent.
  uint64_t next_lsn = 1;
};

/// One batch of committed records read past a cursor.
struct TailBatch {
  /// Encoded record payloads (EncodeRecord format, LSN ascending).
  std::vector<std::string> payloads;
  /// True when cursor->next_lsn predates the checkpoint horizon: the log
  /// no longer holds those records, so the subscriber needs a checkpoint
  /// transfer before any frames.
  bool need_checkpoint = false;
};

/// A checkpoint as raw transferable bytes (exact file contents), for
/// shipping to a joining follower.
struct CheckpointImage {
  uint64_t checkpoint_lsn = 0;
  bool has_snapshot = false;
  bool has_catalog = false;
  std::string snapshot_bytes;
  std::string catalog_bytes;
  /// Replication epoch state at the checkpoint, so a joiner installing
  /// the image adopts the leader's epoch along with its LSN space.
  uint64_t repl_epoch = 1;
  uint64_t epoch_start_lsn = 0;
};

/// Owns a data directory's durability: logs every committed mutation
/// (as the executor's CommitLog), checkpoints, and recovers on open.
class WalManager : public engine::CommitLog {
 public:
  explicit WalManager(std::string data_dir, WalManagerOptions options = {});
  ~WalManager() override;

  /// Opens the data dir, recovering into `store`/`catalog`/`statistics`
  /// (all rebuilt via stage-and-swap; `store` need not be empty — its
  /// contents are replaced). A missing/empty dir is initialized fresh.
  /// Replay polls `deadline` once per record.
  Result<RecoveryReport> Open(storage::DocumentStore* store,
                              storage::Catalog* catalog,
                              storage::StatisticsCatalog* statistics,
                              const fault::Deadline& deadline = {});

  /// engine::CommitLog: logs + commits one executed mutation.
  Status OnCommit(const engine::Statement& statement) override;

  /// DDL / maintenance logging (called by whoever performed the action,
  /// after it succeeded).
  Status LogCreateCollection(const std::string& collection);
  Status LogCreateIndex(const std::string& name,
                        const std::string& collection,
                        const xpath::IndexPattern& pattern);
  Status LogDropIndex(const std::string& name);
  Status LogStatsRefresh(const std::string& collection);

  /// Checkpoints `store`/`catalog` and truncates the log. The caller
  /// must hold whatever lock serializes mutations (the WAL does not know
  /// about the database mutex).
  Status Checkpoint(const storage::DocumentStore& store,
                    const storage::Catalog& catalog);

  // ---- replication support (xia::repl, DESIGN §14) ----

  /// Reads committed records past `cursor`, blocking up to `wait_s` for
  /// new commits when the cursor is caught up (an empty batch after the
  /// wait is a normal poll timeout). Detects checkpoint log resets via
  /// the cursor epoch and transparently restarts from the head of the new
  /// incarnation; when the cursor's next LSN predates the checkpoint
  /// horizon the batch reports need_checkpoint instead of frames.
  /// kDataLoss if the log is corrupt mid-file (never for a torn tail
  /// still being written). Safe to call concurrently with commits; do
  /// NOT call while holding the database lock.
  Result<TailBatch> ReadTail(TailCursor* cursor, size_t max_records,
                             double wait_s);

  /// Reads the current checkpoint files as raw bytes for transfer. The
  /// caller must hold at least the shared database lock so a concurrent
  /// checkpoint cannot replace the files mid-read.
  Result<CheckpointImage> ReadCheckpointImage() const;

  /// Installs a leader checkpoint image on a follower: validates the
  /// image into staging state first (fail-closed — a corrupt image
  /// returns kDataLoss and leaves everything untouched), persists the
  /// files, commits via the MANIFEST rename, resets the log rebased to
  /// the leader's LSN space, and swaps the staged state into
  /// `store`/`catalog`/`statistics`. Caller must hold the exclusive
  /// database lock.
  Status InstallCheckpoint(const CheckpointImage& image,
                           storage::DocumentStore* store,
                           storage::Catalog* catalog,
                           storage::StatisticsCatalog* statistics);

  /// Appends + commits one record that already carries its (leader-
  /// assigned) LSN, which must exactly continue the local log.
  Status AppendReplicated(const WalRecord& record);

  /// Checkpoint horizon (highest LSN covered by the current checkpoint).
  uint64_t checkpoint_lsn() const;

  // ---- epoch fencing (promotion / failover, DESIGN §15) ----

  /// Current replication epoch (1 until any promotion) and the LSN of
  /// the barrier record that opened it (0 for the initial epoch).
  uint64_t repl_epoch() const;
  uint64_t epoch_start_lsn() const;

  /// Promotion: appends + commits a kEpochBarrier record opening epoch
  /// `repl_epoch() + 1` and returns the barrier's LSN. Every LSN at or
  /// past the barrier belongs to the new epoch; a deposed leader must
  /// truncate from here before rejoining. Caller must hold the exclusive
  /// database lock (it changes what the log means).
  Result<uint64_t> BumpEpoch();

  /// Divergence repair for a deposed leader rejoining as a follower:
  /// drops every local record with LSN >= `barrier_lsn` (the new
  /// leader's epoch barrier) and rebuilds `store`/`catalog`/`statistics`
  /// from the local checkpoint plus the surviving log prefix
  /// (stage-and-swap; a failure leaves live state untouched). Requires
  /// checkpoint_lsn() < barrier_lsn — a checkpoint that already covers
  /// divergent records cannot be unwound; use ResetForResync then.
  /// Returns the number of records truncated away. Caller must hold the
  /// exclusive database lock.
  Result<uint64_t> TruncateSuffix(uint64_t barrier_lsn,
                                  storage::DocumentStore* store,
                                  storage::Catalog* catalog,
                                  storage::StatisticsCatalog* statistics);

  /// Full resync fallback: wipes local durable state back to an empty
  /// fresh data dir (epoch 1, LSN space restarting at 1) and swaps an
  /// empty store in, so the next subscribe-from-1 pulls a full snapshot
  /// from the leader. Caller must hold the exclusive database lock.
  Status ResetForResync(storage::DocumentStore* store,
                        storage::Catalog* catalog,
                        storage::StatisticsCatalog* statistics);

  Status Close();

  WalStatus GetStatus() const;
  const RecoveryReport& last_recovery() const { return last_recovery_; }
  const std::string& data_dir() const { return data_dir_; }

  /// Paths inside the data dir (exposed for tests/tools).
  std::string ManifestPath() const;
  std::string LogPath() const;
  std::string SnapshotPath(uint64_t lsn) const;
  std::string CatalogPath(uint64_t lsn) const;

 private:
  Status AppendAndCommit(WalRecord record);
  /// Bumps the commit sequence and wakes blocked ReadTail callers.
  void NotifyCommit();
  /// Removes snapshot-*/catalog-* files other than the `lsn` pair.
  void DeleteStaleVersionedFiles(uint64_t lsn);

  const std::string data_dir_;
  const WalManagerOptions options_;
  WalWriter writer_;
  /// Atomic: bumped by leader checkpoints (exclusive lock held) and by
  /// the follower applier's InstallCheckpoint, read lock-free by
  /// GetStatus().
  std::atomic<uint64_t> checkpoints_{0};
  std::atomic<bool> open_{false};
  RecoveryReport last_recovery_;

  /// Leaf lock coordinating commit/checkpoint publication with tail
  /// readers (lock order: db lock -> writer internals -> repl_mu_; never
  /// held across I/O).
  mutable std::mutex repl_mu_;
  std::condition_variable repl_cv_;
  uint64_t checkpoint_lsn_ = 0;  // guarded by repl_mu_
  uint64_t log_epoch_ = 0;       // guarded by repl_mu_; 1-based once open
  uint64_t commit_seq_ = 0;      // guarded by repl_mu_
  uint64_t repl_epoch_ = 1;      // guarded by repl_mu_
  uint64_t epoch_start_lsn_ = 0; // guarded by repl_mu_
};

}  // namespace xia::wal

#endif  // XIA_WAL_MANAGER_H_
