#include "wal/log_file.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/atomic_file.h"
#include "util/crc32.h"
#include "wal/wire.h"

namespace xia::wal {

namespace fs = std::filesystem;

void AppendFrame(std::string_view payload, std::string* out) {
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU32(out, Crc32(payload));
  out->append(payload.data(), payload.size());
}

FrameParse ParseNextFrame(std::string_view data, size_t* pos,
                          std::string_view* payload, std::string* reason) {
  WireReader reader{data.substr(*pos)};
  uint32_t len = 0;
  uint32_t crc = 0;
  if (!reader.GetU32(&len) || !reader.GetU32(&crc)) {
    if (reason != nullptr) *reason = "truncated frame header";
    return FrameParse::kNeedMore;
  }
  if (len > kMaxFrameBytes) {
    if (reason != nullptr) *reason = "frame length out of range";
    return FrameParse::kCorrupt;
  }
  if (reader.pos + len > reader.data.size()) {
    if (reason != nullptr) *reason = "truncated frame payload";
    return FrameParse::kNeedMore;
  }
  const std::string_view body = reader.data.substr(reader.pos, len);
  if (Crc32(body) != crc) {
    if (reason != nullptr) *reason = "frame crc mismatch";
    return FrameParse::kCorrupt;
  }
  *payload = body;
  *pos += 8 + len;
  return FrameParse::kFrame;
}

Result<ScannedLog> ScanLogFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("WAL file not found: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string data = buf.str();

  ScannedLog scanned;
  if (data.size() < sizeof(kWalMagic)) {
    // A crash can land between file creation and the magic write only if
    // the init itself was torn; salvage nothing, keep nothing.
    scanned.valid_bytes = 0;
    scanned.discarded_bytes = data.size();
    scanned.torn_tail = true;
    scanned.tail_reason = "truncated magic";
    return scanned;
  }
  if (std::memcmp(data.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::ParseError(path + " is not a WAL file (bad magic)");
  }

  size_t pos = sizeof(kWalMagic);
  scanned.valid_bytes = pos;
  while (pos < data.size()) {
    std::string_view payload;
    const FrameParse parsed =
        ParseNextFrame(data, &pos, &payload, &scanned.tail_reason);
    if (parsed != FrameParse::kFrame) break;
    scanned.payloads.emplace_back(payload);
    scanned.valid_bytes = pos;
  }
  scanned.discarded_bytes = data.size() - scanned.valid_bytes;
  scanned.torn_tail = scanned.discarded_bytes > 0;
  return scanned;
}

Status InitLogFile(const std::string& path) {
  return WriteFileAtomic(path,
                         std::string_view(kWalMagic, sizeof(kWalMagic)));
}

Status TruncateLogFile(const std::string& path, uint64_t bytes) {
  if (::truncate(path.c_str(), static_cast<off_t>(bytes)) != 0) {
    return Status::Internal("truncate " + path + " failed: " +
                            std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace xia::wal
