// Buffered group-commit WAL writer.
//
// Append() assigns the next LSN and stages the framed record in an
// in-memory batch; Commit(lsn) blocks until that LSN is covered by the
// configured fsync policy:
//
//   kAlways    commit returns only after the record is write()n AND
//              fsync()ed — durable across power loss.
//   kInterval  commit returns as soon as the record is staged; the
//              buffer is write()n + fsync()ed at most once per
//              `fsync_interval_seconds` (or when it exceeds
//              `max_pending_bytes`), piggybacked on whichever commit
//              crosses the trigger — bounded loss (one interval) on any
//              crash, like synchronous_commit=off.
//   kOff       commit returns once staged; the buffer is write()n on
//              the size trigger and on Sync()/Close(), never fsync()ed
//              (benchmarks, tests).
//
// Group commit: the first committer to find no flush in progress becomes
// the leader, swaps the whole pending batch out under the lock, performs
// the write/fsync outside the lock, and wakes every waiter — concurrent
// committers ride the leader's fsync, which is where the batch-size
// histogram (xia.wal.commit.batch) comes from.
//
// A failed write() poisons the writer (sticky error): the file tail is
// in an unknown state, so every later Commit reports the original
// failure instead of pretending to be durable. Injected fsync faults
// (fault point xia.fault.wal.fsync) do NOT poison — the bytes are
// written, just not yet durable, and a retry can succeed.

#ifndef XIA_WAL_WRITER_H_
#define XIA_WAL_WRITER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>

#include "util/status.h"
#include "wal/record.h"

namespace xia::wal {

/// Test-only hook invoked (when set) at named points inside the writer
/// and the checkpoint protocol; the crash harness uses it to SIGKILL the
/// process at "wal.append.mid_write", "wal.append.before_fsync", etc.
using WalTestHook = std::function<void(const char* point)>;

enum class FsyncPolicy : uint8_t { kAlways = 0, kInterval = 1, kOff = 2 };

/// "always" / "interval" / "off".
const char* FsyncPolicyName(FsyncPolicy policy);

/// Parses a policy name; kInvalidArgument otherwise.
Result<FsyncPolicy> ParseFsyncPolicy(std::string_view name);

struct WalWriterOptions {
  FsyncPolicy policy = FsyncPolicy::kAlways;
  /// kInterval: minimum spacing between fsyncs.
  double fsync_interval_seconds = 0.05;
  /// kInterval/kOff: staged bytes that force a write-out even before the
  /// interval elapses (bounds memory, keeps batches disk-friendly).
  size_t max_pending_bytes = 256u << 10;
  /// Optional crash-harness hook (see WalTestHook).
  WalTestHook test_hook;
};

class WalWriter {
 public:
  explicit WalWriter(WalWriterOptions options = {});
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens an existing WAL file for appending; LSNs continue at
  /// `next_lsn`.
  Status Open(const std::string& path, uint64_t next_lsn);

  /// Stages one record, assigning its LSN (returned). The record is NOT
  /// durable until Commit(lsn) succeeds.
  Result<uint64_t> Append(WalRecord record);

  /// Stages one record that already carries its LSN (a replication
  /// follower persisting a leader-assigned LSN). The LSN must be exactly
  /// next_lsn() — contiguity is the applier's protocol invariant, and
  /// enforcing it here means a gap can never silently reach the log.
  Status AppendWithLsn(const WalRecord& record);

  /// Blocks until `lsn` is covered per the fsync policy (see file
  /// comment). Safe to call from many threads; batches ride the leader.
  Status Commit(uint64_t lsn);

  /// Flushes everything staged and fsyncs (unless policy is kOff).
  /// Checkpoints call this before snapshotting.
  Status Sync();

  /// Closes the current file, atomically re-creates `path` as an empty
  /// WAL, and reopens it (checkpoint truncation). Pending records must
  /// have been flushed first (Sync()). `next_lsn` 0 keeps the LSN
  /// counters (checkpoint truncation: LSNs keep increasing); non-zero
  /// rebases them (a follower installing a leader checkpoint adopts the
  /// leader's LSN space).
  Status ResetFile(const std::string& path, uint64_t next_lsn = 0);

  Status Close();

  uint64_t next_lsn() const;
  uint64_t last_appended_lsn() const;
  uint64_t durable_lsn() const;
  uint64_t appended_records() const;
  uint64_t file_bytes() const;
  uint64_t fsyncs() const;
  FsyncPolicy policy() const { return options_.policy; }

 private:
  /// Leader duty: swap out the pending batch, write (+ maybe fsync)
  /// outside the lock, publish results, wake waiters. Requires `lock`
  /// held and flushing_ == false on entry; returns with `lock` held.
  Status FlushLocked(std::unique_lock<std::mutex>& lock, bool force_sync);

  /// Whether `lsn` satisfies the policy's commit condition (mu_ held).
  bool CoveredLocked(uint64_t lsn) const;

  /// kInterval/kOff: whether the staged buffer should be written out now
  /// (size threshold crossed or fsync interval elapsed). mu_ held.
  bool FlushDueLocked() const;

  Status WriteRaw(std::string_view bytes);
  Status SyncRaw();

  const WalWriterOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  int fd_ = -1;
  std::string pending_;            // framed, not yet written
  std::string encode_scratch_;     // per-append payload buffer, reused
  uint64_t pending_records_ = 0;   // records inside pending_
  uint64_t next_lsn_ = 1;          // next LSN Append will assign
  uint64_t last_appended_lsn_ = 0; // highest LSN staged
  uint64_t written_lsn_ = 0;       // highest LSN write()n
  uint64_t durable_lsn_ = 0;       // highest LSN fsync()ed
  bool flushing_ = false;          // a leader is mid-flush
  Status poison_ = Status::OK();   // sticky write failure
  uint64_t appended_records_ = 0;
  uint64_t file_bytes_ = 0;
  uint64_t fsyncs_ = 0;
  std::chrono::steady_clock::time_point last_sync_time_;
};

}  // namespace xia::wal

#endif  // XIA_WAL_WRITER_H_
