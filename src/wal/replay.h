// Shared WAL record application: one function that applies a decoded
// redo record to a store/catalog/statistics triple.
//
// Two callers, one semantics: recovery (WalManager::Open replaying the
// log into its staging store) and replication (the follower applier
// executing leader-shipped records against the live database). Keeping
// them on the same code path is what makes "a follower converges to the
// leader's store digest" a structural property instead of a test hope —
// there is no second interpretation of a record to drift.
//
// Statement records execute under a plain collection-scan plan: replay
// must not depend on the optimizer or on statistics freshness, because
// neither is part of the logged state.

#ifndef XIA_WAL_REPLAY_H_
#define XIA_WAL_REPLAY_H_

#include "fault/deadline.h"
#include "storage/catalog.h"
#include "storage/document_store.h"
#include "storage/statistics.h"
#include "util/status.h"
#include "wal/record.h"

namespace xia::wal {

/// Applies one record. The caller must hold whatever lock serializes
/// mutations on `store`/`catalog` (recovery owns its staging objects;
/// the follower applier holds the server's exclusive db lock).
Status ApplyRecord(const WalRecord& record, storage::DocumentStore* store,
                   storage::Catalog* catalog,
                   storage::StatisticsCatalog* statistics,
                   const fault::Deadline& deadline = {});

}  // namespace xia::wal

#endif  // XIA_WAL_REPLAY_H_
