#include "wal/record.h"

#include <utility>

#include "wal/wire.h"

namespace xia::wal {

const char* RecordTypeName(RecordType type) {
  switch (type) {
    case RecordType::kCreateCollection:
      return "create_collection";
    case RecordType::kInsert:
      return "insert";
    case RecordType::kStatement:
      return "statement";
    case RecordType::kCreateIndex:
      return "create_index";
    case RecordType::kDropIndex:
      return "drop_index";
    case RecordType::kStatsRefresh:
      return "stats_refresh";
    case RecordType::kEpochBarrier:
      return "epoch_barrier";
  }
  return "unknown";
}

WalRecord WalRecord::CreateCollection(std::string collection) {
  WalRecord r;
  r.type = RecordType::kCreateCollection;
  r.collection = std::move(collection);
  return r;
}

WalRecord WalRecord::Insert(std::string collection, std::string document_text) {
  WalRecord r;
  r.type = RecordType::kInsert;
  r.collection = std::move(collection);
  r.text = std::move(document_text);
  return r;
}

WalRecord WalRecord::Statement(std::string statement_text) {
  WalRecord r;
  r.type = RecordType::kStatement;
  r.text = std::move(statement_text);
  return r;
}

WalRecord WalRecord::CreateIndex(std::string name, std::string collection,
                                 const xpath::IndexPattern& pattern) {
  WalRecord r;
  r.type = RecordType::kCreateIndex;
  r.name = std::move(name);
  r.collection = std::move(collection);
  r.pattern_path = pattern.path;
  r.value_type = pattern.type;
  r.structural = pattern.structural;
  return r;
}

WalRecord WalRecord::DropIndex(std::string name) {
  WalRecord r;
  r.type = RecordType::kDropIndex;
  r.name = std::move(name);
  return r;
}

WalRecord WalRecord::StatsRefresh(std::string collection) {
  WalRecord r;
  r.type = RecordType::kStatsRefresh;
  r.collection = std::move(collection);
  return r;
}

WalRecord WalRecord::EpochBarrier(uint64_t epoch) {
  WalRecord r;
  r.type = RecordType::kEpochBarrier;
  r.epoch = epoch;
  return r;
}

void PutPath(std::string* out, const xpath::Path& path) {
  PutU32(out, static_cast<uint32_t>(path.steps().size()));
  for (const xpath::Step& step : path.steps()) {
    PutU8(out, static_cast<uint8_t>(step.axis));
    PutString(out, step.name_test);
  }
}

bool GetPath(WireReader* reader, xpath::Path* path) {
  uint32_t count = 0;
  if (!reader->GetU32(&count)) return false;
  std::vector<xpath::Step> steps;
  steps.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint8_t axis = 0;
    std::string name;
    if (!reader->GetU8(&axis) || !reader->GetString(&name)) return false;
    if (axis > static_cast<uint8_t>(xpath::Axis::kDescendant)) return false;
    if (name.empty()) return false;
    steps.emplace_back(static_cast<xpath::Axis>(axis), std::move(name));
  }
  *path = xpath::Path(std::move(steps));
  return true;
}

void EncodeRecordTo(const WalRecord& record, std::string* out) {
  PutU64(out, record.lsn);
  PutU8(out, static_cast<uint8_t>(record.type));
  switch (record.type) {
    case RecordType::kCreateCollection:
    case RecordType::kStatsRefresh:
      PutString(out, record.collection);
      break;
    case RecordType::kInsert:
      PutString(out, record.collection);
      PutString(out, record.text);
      break;
    case RecordType::kStatement:
      PutString(out, record.text);
      break;
    case RecordType::kCreateIndex:
      PutString(out, record.name);
      PutString(out, record.collection);
      PutPath(out, record.pattern_path);
      PutU8(out, static_cast<uint8_t>(record.value_type));
      PutU8(out, record.structural ? 1 : 0);
      break;
    case RecordType::kDropIndex:
      PutString(out, record.name);
      break;
    case RecordType::kEpochBarrier:
      PutU64(out, record.epoch);
      break;
  }
}

std::string EncodeRecord(const WalRecord& record) {
  std::string out;
  EncodeRecordTo(record, &out);
  return out;
}

Result<WalRecord> DecodeRecord(std::string_view payload) {
  WireReader reader{payload};
  WalRecord record;
  uint8_t type = 0;
  if (!reader.GetU64(&record.lsn) || !reader.GetU8(&type)) {
    return Status::ParseError("WAL record payload truncated");
  }
  if (type < static_cast<uint8_t>(RecordType::kCreateCollection) ||
      type > static_cast<uint8_t>(RecordType::kEpochBarrier)) {
    return Status::ParseError("WAL record has unknown type " +
                              std::to_string(type));
  }
  record.type = static_cast<RecordType>(type);
  bool ok = true;
  switch (record.type) {
    case RecordType::kCreateCollection:
    case RecordType::kStatsRefresh:
      ok = reader.GetString(&record.collection);
      break;
    case RecordType::kInsert:
      ok = reader.GetString(&record.collection) &&
           reader.GetString(&record.text);
      break;
    case RecordType::kStatement:
      ok = reader.GetString(&record.text);
      break;
    case RecordType::kCreateIndex: {
      uint8_t value_type = 0;
      uint8_t structural = 0;
      ok = reader.GetString(&record.name) &&
           reader.GetString(&record.collection) &&
           GetPath(&reader, &record.pattern_path) &&
           reader.GetU8(&value_type) && reader.GetU8(&structural) &&
           value_type <= static_cast<uint8_t>(xpath::ValueType::kNumeric) &&
           structural <= 1;
      record.value_type = static_cast<xpath::ValueType>(value_type);
      record.structural = structural != 0;
      break;
    }
    case RecordType::kDropIndex:
      ok = reader.GetString(&record.name);
      break;
    case RecordType::kEpochBarrier:
      ok = reader.GetU64(&record.epoch) && record.epoch > 0;
      break;
  }
  if (!ok || !reader.AtEnd()) {
    return Status::ParseError(std::string("malformed WAL ") +
                              RecordTypeName(record.type) + " record");
  }
  return record;
}

}  // namespace xia::wal
