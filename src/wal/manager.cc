#include "wal/manager.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "engine/query_parser.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "optimizer/plan.h"
#include "storage/snapshot.h"
#include "util/atomic_file.h"
#include "util/crc32.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "wal/log_file.h"
#include "wal/wire.h"

namespace xia::wal {

namespace fs = std::filesystem;

namespace {

constexpr char kManifestMagic[8] = {'X', 'I', 'A', 'M', 'A', 'N', 'I', '1'};
constexpr char kCatalogMagic[8] = {'X', 'I', 'A', 'C', 'A', 'T', '0', '1'};

/// magic + one CRC frame. These files are only ever replaced atomically,
/// so unlike the log they are either absent, whole, or evidence of real
/// data loss — never legitimately torn.
std::string EncodeFramedFile(const char (&magic)[8],
                             std::string_view payload) {
  std::string out(magic, sizeof(magic));
  AppendFrame(payload, &out);
  return out;
}

Result<std::string> ReadFramedFile(const std::string& path,
                                   const char (&magic)[8]) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound(path + " not found");
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string data = buf.str();
  if (data.size() < sizeof(magic) + 8 ||
      std::memcmp(data.data(), magic, sizeof(magic)) != 0) {
    return Status::DataLoss(path + " is corrupt (bad magic)");
  }
  WireReader reader{std::string_view(data).substr(sizeof(magic))};
  uint32_t len = 0;
  uint32_t crc = 0;
  if (!reader.GetU32(&len) || !reader.GetU32(&crc) ||
      reader.pos + len != reader.data.size()) {
    return Status::DataLoss(path + " is corrupt (bad frame)");
  }
  const std::string_view payload = reader.data.substr(reader.pos, len);
  if (Crc32(payload) != crc) {
    return Status::DataLoss(path + " is corrupt (crc mismatch)");
  }
  return std::string(payload);
}

struct Manifest {
  uint64_t checkpoint_lsn = 0;
  bool has_snapshot = false;
  bool has_catalog = false;
};

Status WriteManifest(const std::string& path, const Manifest& m) {
  std::string payload;
  PutU64(&payload, m.checkpoint_lsn);
  PutU8(&payload, m.has_snapshot ? 1 : 0);
  PutU8(&payload, m.has_catalog ? 1 : 0);
  return WriteFileAtomic(path, EncodeFramedFile(kManifestMagic, payload));
}

Result<Manifest> ReadManifest(const std::string& path) {
  XIA_ASSIGN_OR_RETURN(const std::string payload,
                       ReadFramedFile(path, kManifestMagic));
  WireReader reader{payload};
  Manifest m;
  uint8_t has_snapshot = 0;
  uint8_t has_catalog = 0;
  if (!reader.GetU64(&m.checkpoint_lsn) || !reader.GetU8(&has_snapshot) ||
      !reader.GetU8(&has_catalog) || !reader.AtEnd()) {
    return Status::DataLoss(path + " is corrupt (bad manifest payload)");
  }
  m.has_snapshot = has_snapshot != 0;
  m.has_catalog = has_catalog != 0;
  return m;
}

std::string EncodeCatalogFile(const storage::DocumentStore& store,
                              const storage::Catalog& catalog) {
  // Only real indexes persist; virtual ones are advisor scratch state.
  std::vector<const storage::IndexDef*> real;
  for (const std::string& coll : store.CollectionNames()) {
    for (const storage::IndexDef* def : catalog.IndexesFor(coll)) {
      if (!def->is_virtual) real.push_back(def);
    }
  }
  std::sort(real.begin(), real.end(),
            [](const storage::IndexDef* a, const storage::IndexDef* b) {
              return a->name < b->name;
            });
  std::string payload;
  PutU32(&payload, static_cast<uint32_t>(real.size()));
  for (const storage::IndexDef* def : real) {
    PutString(&payload, def->name);
    PutString(&payload, def->collection);
    PutPath(&payload, def->pattern.path);
    PutU8(&payload, static_cast<uint8_t>(def->pattern.type));
    PutU8(&payload, def->pattern.structural ? 1 : 0);
  }
  return EncodeFramedFile(kCatalogMagic, payload);
}

Status LoadCatalogFile(const std::string& path, storage::Catalog* catalog) {
  XIA_ASSIGN_OR_RETURN(const std::string payload,
                       ReadFramedFile(path, kCatalogMagic));
  WireReader reader{payload};
  uint32_t count = 0;
  if (!reader.GetU32(&count)) {
    return Status::DataLoss(path + " is corrupt (bad catalog payload)");
  }
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    std::string collection;
    xpath::IndexPattern pattern;
    uint8_t type = 0;
    uint8_t structural = 0;
    if (!reader.GetString(&name) || !reader.GetString(&collection) ||
        !GetPath(&reader, &pattern.path) || !reader.GetU8(&type) ||
        !reader.GetU8(&structural) ||
        type > static_cast<uint8_t>(xpath::ValueType::kNumeric)) {
      return Status::DataLoss(path + " is corrupt (bad index entry)");
    }
    pattern.type = static_cast<xpath::ValueType>(type);
    pattern.structural = structural != 0;
    XIA_RETURN_IF_ERROR(
        catalog->CreateIndex(name, collection, pattern).status());
  }
  if (!reader.AtEnd()) {
    return Status::DataLoss(path + " is corrupt (trailing bytes)");
  }
  return Status::OK();
}

}  // namespace

std::string RecoveryReport::ToString() const {
  if (fresh_start) return "initialized fresh data dir (no prior state)";
  std::string out = StringPrintf(
      "recovered: checkpoint_lsn=%llu replayed=%llu skipped=%llu",
      static_cast<unsigned long long>(checkpoint_lsn),
      static_cast<unsigned long long>(records_replayed),
      static_cast<unsigned long long>(records_skipped));
  if (records_replayed > 0) {
    out += StringPrintf(" lsn=[%llu..%llu]",
                        static_cast<unsigned long long>(first_replayed_lsn),
                        static_cast<unsigned long long>(last_replayed_lsn));
  }
  if (salvaged) {
    out += StringPrintf(" torn_tail_discarded=%lluB",
                        static_cast<unsigned long long>(bytes_discarded));
  }
  out += StringPrintf(" in %.3fs", seconds);
  return out;
}

std::string WalStatus::ToString() const {
  return StringPrintf(
      "wal: dir=%s policy=%s next_lsn=%llu durable_lsn=%llu "
      "checkpoint_lsn=%llu appended=%llu log_bytes=%llu fsyncs=%llu "
      "checkpoints=%llu",
      data_dir.c_str(), FsyncPolicyName(policy),
      static_cast<unsigned long long>(next_lsn),
      static_cast<unsigned long long>(durable_lsn),
      static_cast<unsigned long long>(checkpoint_lsn),
      static_cast<unsigned long long>(appended_records),
      static_cast<unsigned long long>(log_bytes),
      static_cast<unsigned long long>(fsyncs),
      static_cast<unsigned long long>(checkpoints));
}

WalManager::WalManager(std::string data_dir, WalManagerOptions options)
    : data_dir_(std::move(data_dir)),
      options_(std::move(options)),
      writer_(options_.writer) {}

WalManager::~WalManager() { (void)Close(); }

std::string WalManager::ManifestPath() const { return data_dir_ + "/MANIFEST"; }
std::string WalManager::LogPath() const { return data_dir_ + "/wal.log"; }
std::string WalManager::SnapshotPath(uint64_t lsn) const {
  return data_dir_ + StringPrintf("/snapshot-%020llu.xia",
                                  static_cast<unsigned long long>(lsn));
}
std::string WalManager::CatalogPath(uint64_t lsn) const {
  return data_dir_ + StringPrintf("/catalog-%020llu.xia",
                                  static_cast<unsigned long long>(lsn));
}

Result<RecoveryReport> WalManager::Open(storage::DocumentStore* store,
                                        storage::Catalog* catalog,
                                        storage::StatisticsCatalog* statistics,
                                        const fault::Deadline& deadline) {
  if (open_) return Status::FailedPrecondition("WAL manager already open");
  Stopwatch timer;
  RecoveryReport report;

  std::error_code ec;
  fs::create_directories(data_dir_, ec);
  if (ec) {
    return Status::Internal("cannot create data dir " + data_dir_ + ": " +
                            ec.message());
  }

  if (!fs::exists(ManifestPath())) {
    // Satellite: a missing/empty data dir is a fresh database, not an
    // error.
    XIA_RETURN_IF_ERROR(InitLogFile(LogPath()));
    XIA_RETURN_IF_ERROR(WriteManifest(ManifestPath(), Manifest{}));
    XIA_RETURN_IF_ERROR(writer_.Open(LogPath(), /*next_lsn=*/1));
    checkpoint_lsn_ = 0;
    open_ = true;
    report.fresh_start = true;
    report.seconds = timer.ElapsedSeconds();
    last_recovery_ = report;
    return report;
  }

  XIA_ASSIGN_OR_RETURN(const Manifest manifest, ReadManifest(ManifestPath()));
  report.checkpoint_lsn = manifest.checkpoint_lsn;

  // Stage: rebuild checkpoint state off to the side.
  storage::DocumentStore staging_store;
  storage::StatisticsCatalog staging_stats;
  storage::Catalog staging_catalog(&staging_store, &staging_stats,
                                   catalog->cost_constants());
  if (manifest.has_snapshot) {
    XIA_RETURN_IF_ERROR(storage::LoadSnapshotFromFile(
        SnapshotPath(manifest.checkpoint_lsn), &staging_store));
  }
  for (const std::string& coll : staging_store.CollectionNames()) {
    auto c = staging_store.GetCollection(coll);
    if (c.ok()) staging_stats.RunStats(**c);
  }
  if (manifest.has_catalog) {
    XIA_RETURN_IF_ERROR(
        LoadCatalogFile(CatalogPath(manifest.checkpoint_lsn),
                        &staging_catalog));
  }

  // Scan the log, salvaging up to the first torn/corrupt frame.
  uint64_t max_lsn_seen = manifest.checkpoint_lsn;
  auto scanned = ScanLogFile(LogPath());
  if (scanned.ok()) {
    report.bytes_salvaged = scanned->valid_bytes;
    report.bytes_discarded = scanned->discarded_bytes;
    report.salvaged = scanned->torn_tail;

    engine::Executor replayer(&staging_store, &staging_catalog);
    const optimizer::Plan scan_plan;  // collection scan: no optimizer,
                                      // no statistics dependence
    engine::ExecOptions exec_options;
    exec_options.deadline = deadline;
    uint64_t applied_lsn = manifest.checkpoint_lsn;
    for (const std::string& payload : scanned->payloads) {
      XIA_RETURN_IF_ERROR(fault::CheckInterrupt(deadline));
      XIA_FAULT_INJECT(fault::points::kWalReplay);
      XIA_ASSIGN_OR_RETURN(const WalRecord record, DecodeRecord(payload));
      max_lsn_seen = std::max(max_lsn_seen, record.lsn);
      if (record.lsn <= applied_lsn) {
        // Already covered by the checkpoint (or a duplicate): idempotent
        // replay skips it.
        ++report.records_skipped;
        continue;
      }
      switch (record.type) {
        case RecordType::kCreateCollection:
          XIA_RETURN_IF_ERROR(
              staging_store.CreateCollection(record.collection).status());
          break;
        case RecordType::kInsert: {
          engine::Statement st;
          st.body = engine::InsertSpec{record.collection, record.text};
          XIA_RETURN_IF_ERROR(
              replayer.Execute(st, scan_plan, exec_options).status());
          break;
        }
        case RecordType::kStatement: {
          XIA_ASSIGN_OR_RETURN(const engine::Statement st,
                               engine::ParseStatement(record.text));
          XIA_RETURN_IF_ERROR(
              replayer.Execute(st, scan_plan, exec_options).status());
          break;
        }
        case RecordType::kCreateIndex: {
          xpath::IndexPattern pattern;
          pattern.path = record.pattern_path;
          pattern.type = record.value_type;
          pattern.structural = record.structural;
          XIA_RETURN_IF_ERROR(staging_catalog
                                  .CreateIndex(record.name, record.collection,
                                               pattern)
                                  .status());
          break;
        }
        case RecordType::kDropIndex:
          XIA_RETURN_IF_ERROR(staging_catalog.DropIndex(record.name));
          break;
        case RecordType::kStatsRefresh: {
          auto coll = staging_store.GetCollection(record.collection);
          XIA_RETURN_IF_ERROR(coll.status());
          staging_stats.RunStats(**coll);
          break;
        }
      }
      applied_lsn = record.lsn;
      if (report.records_replayed == 0) report.first_replayed_lsn = record.lsn;
      report.last_replayed_lsn = record.lsn;
      ++report.records_replayed;
    }

    if (scanned->torn_tail) {
      if (scanned->valid_bytes >= sizeof(kWalMagic)) {
        XIA_RETURN_IF_ERROR(TruncateLogFile(LogPath(), scanned->valid_bytes));
      } else {
        XIA_RETURN_IF_ERROR(InitLogFile(LogPath()));
      }
    }
  } else if (scanned.status().code() == StatusCode::kNotFound) {
    // A manifest without a log means the checkpoint's log reset never
    // happened (or the log was deleted); start an empty one.
    XIA_RETURN_IF_ERROR(InitLogFile(LogPath()));
  } else {
    // Bad magic: the file exists but is not a WAL. Nothing salvageable.
    return Status::DataLoss(scanned.status().message());
  }

  // Refresh statistics over the recovered data, then swap everything in.
  for (const std::string& coll : staging_store.CollectionNames()) {
    auto c = staging_store.GetCollection(coll);
    if (c.ok()) staging_stats.RunStats(**c);
  }
  store->Swap(&staging_store);
  catalog->AdoptIndexesFrom(&staging_catalog);
  for (const std::string& coll : store->CollectionNames()) {
    auto c = store->GetCollection(coll);
    if (c.ok()) statistics->RunStats(**c);
  }

  XIA_RETURN_IF_ERROR(writer_.Open(LogPath(), max_lsn_seen + 1));
  checkpoint_lsn_ = manifest.checkpoint_lsn;
  open_ = true;

  report.seconds = timer.ElapsedSeconds();
  last_recovery_ = report;
  XIA_OBS_COUNT("xia.wal.recovery.records_replayed", report.records_replayed);
  XIA_OBS_COUNT("xia.wal.recovery.records_skipped", report.records_skipped);
  XIA_OBS_COUNT("xia.wal.recovery.bytes_salvaged", report.bytes_salvaged);
  XIA_OBS_COUNT("xia.wal.recovery.bytes_discarded", report.bytes_discarded);
  XIA_OBS_OBSERVE_LATENCY("xia.wal.recovery.seconds", report.seconds);
  return report;
}

Status WalManager::AppendAndCommit(WalRecord record) {
  if (!open_) return Status::FailedPrecondition("WAL manager not open");
  XIA_ASSIGN_OR_RETURN(const uint64_t lsn, writer_.Append(std::move(record)));
  return writer_.Commit(lsn);
}

Status WalManager::OnCommit(const engine::Statement& statement) {
  if (statement.is_insert()) {
    const engine::InsertSpec& ins = statement.insert_spec();
    return AppendAndCommit(WalRecord::Insert(ins.collection,
                                             ins.document_text));
  }
  const std::string text = engine::ToText(statement);
  // Validated here so replay can never hit a parse error on a frame that
  // passed its CRC.
  XIA_RETURN_IF_ERROR(engine::ParseStatement(text).status());
  return AppendAndCommit(WalRecord::Statement(text));
}

Status WalManager::LogCreateCollection(const std::string& collection) {
  return AppendAndCommit(WalRecord::CreateCollection(collection));
}

Status WalManager::LogCreateIndex(const std::string& name,
                                  const std::string& collection,
                                  const xpath::IndexPattern& pattern) {
  return AppendAndCommit(WalRecord::CreateIndex(name, collection, pattern));
}

Status WalManager::LogDropIndex(const std::string& name) {
  return AppendAndCommit(WalRecord::DropIndex(name));
}

Status WalManager::LogStatsRefresh(const std::string& collection) {
  return AppendAndCommit(WalRecord::StatsRefresh(collection));
}

Status WalManager::Checkpoint(const storage::DocumentStore& store,
                              const storage::Catalog& catalog) {
  if (!open_) return Status::FailedPrecondition("WAL manager not open");
  XIA_RETURN_IF_ERROR(writer_.Sync());
  const uint64_t lsn = writer_.last_appended_lsn();

  std::ostringstream snapshot;
  XIA_RETURN_IF_ERROR(storage::SaveSnapshot(store, snapshot));
  XIA_RETURN_IF_ERROR(WriteFileAtomic(SnapshotPath(lsn), snapshot.str()));
  if (options_.writer.test_hook) {
    options_.writer.test_hook("checkpoint.after_snapshot");
  }

  XIA_RETURN_IF_ERROR(
      WriteFileAtomic(CatalogPath(lsn), EncodeCatalogFile(store, catalog)));

  Manifest manifest;
  manifest.checkpoint_lsn = lsn;
  manifest.has_snapshot = true;
  manifest.has_catalog = true;
  // The manifest rename is the checkpoint's commit point: a crash before
  // it recovers from the previous checkpoint + full log, after it from
  // the new snapshot + LSN-filtered log.
  XIA_RETURN_IF_ERROR(WriteManifest(ManifestPath(), manifest));
  if (options_.writer.test_hook) {
    options_.writer.test_hook("checkpoint.after_manifest");
  }

  XIA_RETURN_IF_ERROR(writer_.ResetFile(LogPath()));
  if (options_.writer.test_hook) {
    options_.writer.test_hook("checkpoint.after_reset");
  }

  // Stale versioned files are garbage once the manifest moved on.
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(data_dir_, ec)) {
    const std::string name = entry.path().filename().string();
    const bool versioned = (name.rfind("snapshot-", 0) == 0 ||
                            name.rfind("catalog-", 0) == 0);
    const bool current = entry.path() == fs::path(SnapshotPath(lsn)) ||
                         entry.path() == fs::path(CatalogPath(lsn));
    if (versioned && !current) fs::remove(entry.path(), ec);
  }

  checkpoint_lsn_ = lsn;
  ++checkpoints_;
  XIA_OBS_COUNT("xia.wal.checkpoints", 1);
  return Status::OK();
}

Status WalManager::Close() {
  if (!open_) return Status::OK();
  open_ = false;
  return writer_.Close();
}

WalStatus WalManager::GetStatus() const {
  WalStatus status;
  status.data_dir = data_dir_;
  status.policy = options_.writer.policy;
  status.next_lsn = writer_.next_lsn();
  status.durable_lsn = writer_.durable_lsn();
  status.checkpoint_lsn = checkpoint_lsn_;
  status.appended_records = writer_.appended_records();
  status.log_bytes = writer_.file_bytes();
  status.fsyncs = writer_.fsyncs();
  status.checkpoints = checkpoints_;
  return status;
}

}  // namespace xia::wal
