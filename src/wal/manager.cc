#include "wal/manager.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "engine/query_parser.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "optimizer/plan.h"
#include "storage/snapshot.h"
#include "util/atomic_file.h"
#include "util/crc32.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "wal/log_file.h"
#include "wal/replay.h"
#include "wal/wire.h"

namespace xia::wal {

namespace fs = std::filesystem;

namespace {

constexpr char kManifestMagic[8] = {'X', 'I', 'A', 'M', 'A', 'N', 'I', '1'};
constexpr char kCatalogMagic[8] = {'X', 'I', 'A', 'C', 'A', 'T', '0', '1'};

/// magic + one CRC frame. These files are only ever replaced atomically,
/// so unlike the log they are either absent, whole, or evidence of real
/// data loss — never legitimately torn.
std::string EncodeFramedFile(const char (&magic)[8],
                             std::string_view payload) {
  std::string out(magic, sizeof(magic));
  AppendFrame(payload, &out);
  return out;
}

Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound(path + " not found");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Validates magic + frame CRC over in-memory file contents. `where`
/// names the source (a path, or "replication catalog image") for the
/// kDataLoss message.
Result<std::string> ParseFramedBytes(std::string_view data,
                                     const char (&magic)[8],
                                     const std::string& where) {
  if (data.size() < sizeof(magic) + 8 ||
      std::memcmp(data.data(), magic, sizeof(magic)) != 0) {
    return Status::DataLoss(where + " is corrupt (bad magic)");
  }
  WireReader reader{data.substr(sizeof(magic))};
  uint32_t len = 0;
  uint32_t crc = 0;
  if (!reader.GetU32(&len) || !reader.GetU32(&crc) ||
      reader.pos + len != reader.data.size()) {
    return Status::DataLoss(where + " is corrupt (bad frame)");
  }
  const std::string_view payload = reader.data.substr(reader.pos, len);
  if (Crc32(payload) != crc) {
    return Status::DataLoss(where + " is corrupt (crc mismatch)");
  }
  return std::string(payload);
}

Result<std::string> ReadFramedFile(const std::string& path,
                                   const char (&magic)[8]) {
  XIA_ASSIGN_OR_RETURN(const std::string data, ReadWholeFile(path));
  return ParseFramedBytes(data, magic, path);
}

struct Manifest {
  uint64_t checkpoint_lsn = 0;
  bool has_snapshot = false;
  bool has_catalog = false;
  uint64_t repl_epoch = 1;
  uint64_t epoch_start_lsn = 0;
};

Status WriteManifest(const std::string& path, const Manifest& m) {
  std::string payload;
  PutU64(&payload, m.checkpoint_lsn);
  PutU8(&payload, m.has_snapshot ? 1 : 0);
  PutU8(&payload, m.has_catalog ? 1 : 0);
  PutU64(&payload, m.repl_epoch);
  PutU64(&payload, m.epoch_start_lsn);
  return WriteFileAtomic(path, EncodeFramedFile(kManifestMagic, payload));
}

Result<Manifest> ReadManifest(const std::string& path) {
  XIA_ASSIGN_OR_RETURN(const std::string payload,
                       ReadFramedFile(path, kManifestMagic));
  WireReader reader{payload};
  Manifest m;
  uint8_t has_snapshot = 0;
  uint8_t has_catalog = 0;
  if (!reader.GetU64(&m.checkpoint_lsn) || !reader.GetU8(&has_snapshot) ||
      !reader.GetU8(&has_catalog)) {
    return Status::DataLoss(path + " is corrupt (bad manifest payload)");
  }
  // The epoch tail is optional: manifests written before epoch fencing
  // existed end here and mean "initial epoch". A partial tail is still
  // corruption.
  if (!reader.AtEnd()) {
    if (!reader.GetU64(&m.repl_epoch) || !reader.GetU64(&m.epoch_start_lsn) ||
        !reader.AtEnd() || m.repl_epoch == 0) {
      return Status::DataLoss(path + " is corrupt (bad manifest payload)");
    }
  }
  m.has_snapshot = has_snapshot != 0;
  m.has_catalog = has_catalog != 0;
  return m;
}

std::string EncodeCatalogFile(const storage::DocumentStore& store,
                              const storage::Catalog& catalog) {
  // Only real indexes persist; virtual ones are advisor scratch state.
  std::vector<const storage::IndexDef*> real;
  for (const std::string& coll : store.CollectionNames()) {
    for (const storage::IndexDef* def : catalog.IndexesFor(coll)) {
      if (!def->is_virtual) real.push_back(def);
    }
  }
  std::sort(real.begin(), real.end(),
            [](const storage::IndexDef* a, const storage::IndexDef* b) {
              return a->name < b->name;
            });
  std::string payload;
  PutU32(&payload, static_cast<uint32_t>(real.size()));
  for (const storage::IndexDef* def : real) {
    PutString(&payload, def->name);
    PutString(&payload, def->collection);
    PutPath(&payload, def->pattern.path);
    PutU8(&payload, static_cast<uint8_t>(def->pattern.type));
    PutU8(&payload, def->pattern.structural ? 1 : 0);
  }
  return EncodeFramedFile(kCatalogMagic, payload);
}

Status LoadCatalogPayload(const std::string& payload, const std::string& where,
                          storage::Catalog* catalog) {
  WireReader reader{payload};
  uint32_t count = 0;
  if (!reader.GetU32(&count)) {
    return Status::DataLoss(where + " is corrupt (bad catalog payload)");
  }
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    std::string collection;
    xpath::IndexPattern pattern;
    uint8_t type = 0;
    uint8_t structural = 0;
    if (!reader.GetString(&name) || !reader.GetString(&collection) ||
        !GetPath(&reader, &pattern.path) || !reader.GetU8(&type) ||
        !reader.GetU8(&structural) ||
        type > static_cast<uint8_t>(xpath::ValueType::kNumeric)) {
      return Status::DataLoss(where + " is corrupt (bad index entry)");
    }
    pattern.type = static_cast<xpath::ValueType>(type);
    pattern.structural = structural != 0;
    XIA_RETURN_IF_ERROR(
        catalog->CreateIndex(name, collection, pattern).status());
  }
  if (!reader.AtEnd()) {
    return Status::DataLoss(where + " is corrupt (trailing bytes)");
  }
  return Status::OK();
}

Status LoadCatalogFile(const std::string& path, storage::Catalog* catalog) {
  XIA_ASSIGN_OR_RETURN(const std::string payload,
                       ReadFramedFile(path, kCatalogMagic));
  return LoadCatalogPayload(payload, path, catalog);
}

/// Satellite fail-closed rule: a checkpoint file the MANIFEST references
/// is only ever replaced atomically, so *any* problem reading it —
/// missing, truncated, corrupt — is evidence of data loss, never a
/// situation to half-recover past.
Status AsCheckpointDataLoss(const Status& status) {
  if (status.ok() || status.code() == StatusCode::kDataLoss) return status;
  return Status::DataLoss("checkpoint file unusable: " + status.ToString());
}

}  // namespace

std::string RecoveryReport::ToString() const {
  if (fresh_start) return "initialized fresh data dir (no prior state)";
  std::string out = StringPrintf(
      "recovered: checkpoint_lsn=%llu replayed=%llu skipped=%llu",
      static_cast<unsigned long long>(checkpoint_lsn),
      static_cast<unsigned long long>(records_replayed),
      static_cast<unsigned long long>(records_skipped));
  if (records_replayed > 0) {
    out += StringPrintf(" lsn=[%llu..%llu]",
                        static_cast<unsigned long long>(first_replayed_lsn),
                        static_cast<unsigned long long>(last_replayed_lsn));
  }
  if (salvaged) {
    out += StringPrintf(" torn_tail_discarded=%lluB",
                        static_cast<unsigned long long>(bytes_discarded));
  }
  out += StringPrintf(" in %.3fs", seconds);
  return out;
}

std::string WalStatus::ToString() const {
  return StringPrintf(
      "wal: dir=%s policy=%s next_lsn=%llu durable_lsn=%llu "
      "checkpoint_lsn=%llu appended=%llu log_bytes=%llu fsyncs=%llu "
      "checkpoints=%llu repl_epoch=%llu epoch_start_lsn=%llu",
      data_dir.c_str(), FsyncPolicyName(policy),
      static_cast<unsigned long long>(next_lsn),
      static_cast<unsigned long long>(durable_lsn),
      static_cast<unsigned long long>(checkpoint_lsn),
      static_cast<unsigned long long>(appended_records),
      static_cast<unsigned long long>(log_bytes),
      static_cast<unsigned long long>(fsyncs),
      static_cast<unsigned long long>(checkpoints),
      static_cast<unsigned long long>(repl_epoch),
      static_cast<unsigned long long>(epoch_start_lsn));
}

WalManager::WalManager(std::string data_dir, WalManagerOptions options)
    : data_dir_(std::move(data_dir)),
      options_(std::move(options)),
      writer_(options_.writer) {}

WalManager::~WalManager() { (void)Close(); }

std::string WalManager::ManifestPath() const { return data_dir_ + "/MANIFEST"; }
std::string WalManager::LogPath() const { return data_dir_ + "/wal.log"; }
std::string WalManager::SnapshotPath(uint64_t lsn) const {
  return data_dir_ + StringPrintf("/snapshot-%020llu.xia",
                                  static_cast<unsigned long long>(lsn));
}
std::string WalManager::CatalogPath(uint64_t lsn) const {
  return data_dir_ + StringPrintf("/catalog-%020llu.xia",
                                  static_cast<unsigned long long>(lsn));
}

Result<RecoveryReport> WalManager::Open(storage::DocumentStore* store,
                                        storage::Catalog* catalog,
                                        storage::StatisticsCatalog* statistics,
                                        const fault::Deadline& deadline) {
  if (open_) return Status::FailedPrecondition("WAL manager already open");
  Stopwatch timer;
  RecoveryReport report;

  std::error_code ec;
  fs::create_directories(data_dir_, ec);
  if (ec) {
    return Status::Internal("cannot create data dir " + data_dir_ + ": " +
                            ec.message());
  }

  if (!fs::exists(ManifestPath())) {
    // Satellite: a missing/empty data dir is a fresh database, not an
    // error.
    XIA_RETURN_IF_ERROR(InitLogFile(LogPath()));
    XIA_RETURN_IF_ERROR(WriteManifest(ManifestPath(), Manifest{}));
    XIA_RETURN_IF_ERROR(writer_.Open(LogPath(), /*next_lsn=*/1));
    {
      std::lock_guard<std::mutex> lock(repl_mu_);
      checkpoint_lsn_ = 0;
      log_epoch_ = 1;
      repl_epoch_ = 1;
      epoch_start_lsn_ = 0;
    }
    open_.store(true, std::memory_order_release);
    report.fresh_start = true;
    report.seconds = timer.ElapsedSeconds();
    last_recovery_ = report;
    return report;
  }

  XIA_ASSIGN_OR_RETURN(const Manifest manifest, ReadManifest(ManifestPath()));
  report.checkpoint_lsn = manifest.checkpoint_lsn;

  // Stage: rebuild checkpoint state off to the side.
  storage::DocumentStore staging_store;
  storage::StatisticsCatalog staging_stats;
  storage::Catalog staging_catalog(&staging_store, &staging_stats,
                                   catalog->cost_constants());
  if (manifest.has_snapshot) {
    XIA_RETURN_IF_ERROR(AsCheckpointDataLoss(storage::LoadSnapshotFromFile(
        SnapshotPath(manifest.checkpoint_lsn), &staging_store)));
  }
  for (const std::string& coll : staging_store.CollectionNames()) {
    auto c = staging_store.GetCollection(coll);
    if (c.ok()) staging_stats.RunStats(**c);
  }
  if (manifest.has_catalog) {
    XIA_RETURN_IF_ERROR(AsCheckpointDataLoss(
        LoadCatalogFile(CatalogPath(manifest.checkpoint_lsn),
                        &staging_catalog)));
  }

  // Scan the log, salvaging up to the first torn/corrupt frame.
  uint64_t max_lsn_seen = manifest.checkpoint_lsn;
  // Epoch state recovers from the manifest (checkpoint-time value), then
  // advances past any barrier records replayed from the log.
  uint64_t repl_epoch = manifest.repl_epoch;
  uint64_t epoch_start_lsn = manifest.epoch_start_lsn;
  auto scanned = ScanLogFile(LogPath());
  if (scanned.ok()) {
    report.bytes_salvaged = scanned->valid_bytes;
    report.bytes_discarded = scanned->discarded_bytes;
    report.salvaged = scanned->torn_tail;

    uint64_t applied_lsn = manifest.checkpoint_lsn;
    for (const std::string& payload : scanned->payloads) {
      XIA_RETURN_IF_ERROR(fault::CheckInterrupt(deadline));
      XIA_FAULT_INJECT(fault::points::kWalReplay);
      XIA_ASSIGN_OR_RETURN(const WalRecord record, DecodeRecord(payload));
      max_lsn_seen = std::max(max_lsn_seen, record.lsn);
      if (record.type == RecordType::kEpochBarrier &&
          record.epoch > repl_epoch) {
        repl_epoch = record.epoch;
        epoch_start_lsn = record.lsn;
      }
      if (record.lsn <= applied_lsn) {
        // Already covered by the checkpoint (or a duplicate): idempotent
        // replay skips it.
        ++report.records_skipped;
        continue;
      }
      XIA_RETURN_IF_ERROR(ApplyRecord(record, &staging_store,
                                      &staging_catalog, &staging_stats,
                                      deadline));
      applied_lsn = record.lsn;
      if (report.records_replayed == 0) report.first_replayed_lsn = record.lsn;
      report.last_replayed_lsn = record.lsn;
      ++report.records_replayed;
    }

    if (scanned->torn_tail) {
      if (scanned->valid_bytes >= sizeof(kWalMagic)) {
        XIA_RETURN_IF_ERROR(TruncateLogFile(LogPath(), scanned->valid_bytes));
      } else {
        XIA_RETURN_IF_ERROR(InitLogFile(LogPath()));
      }
    }
  } else if (scanned.status().code() == StatusCode::kNotFound) {
    // A manifest without a log means the checkpoint's log reset never
    // happened (or the log was deleted); start an empty one.
    XIA_RETURN_IF_ERROR(InitLogFile(LogPath()));
  } else {
    // Bad magic: the file exists but is not a WAL. Nothing salvageable.
    return Status::DataLoss(scanned.status().message());
  }

  // Refresh statistics over the recovered data, then swap everything in.
  for (const std::string& coll : staging_store.CollectionNames()) {
    auto c = staging_store.GetCollection(coll);
    if (c.ok()) staging_stats.RunStats(**c);
  }
  store->Swap(&staging_store);
  catalog->AdoptIndexesFrom(&staging_catalog);
  for (const std::string& coll : store->CollectionNames()) {
    auto c = store->GetCollection(coll);
    if (c.ok()) statistics->RunStats(**c);
  }

  XIA_RETURN_IF_ERROR(writer_.Open(LogPath(), max_lsn_seen + 1));
  {
    std::lock_guard<std::mutex> lock(repl_mu_);
    checkpoint_lsn_ = manifest.checkpoint_lsn;
    log_epoch_ = 1;
    repl_epoch_ = repl_epoch;
    epoch_start_lsn_ = epoch_start_lsn;
  }
  open_.store(true, std::memory_order_release);

  report.seconds = timer.ElapsedSeconds();
  last_recovery_ = report;
  XIA_OBS_COUNT("xia.wal.recovery.records_replayed", report.records_replayed);
  XIA_OBS_COUNT("xia.wal.recovery.records_skipped", report.records_skipped);
  XIA_OBS_COUNT("xia.wal.recovery.bytes_salvaged", report.bytes_salvaged);
  XIA_OBS_COUNT("xia.wal.recovery.bytes_discarded", report.bytes_discarded);
  XIA_OBS_OBSERVE_LATENCY("xia.wal.recovery.seconds", report.seconds);
  return report;
}

Status WalManager::AppendAndCommit(WalRecord record) {
  if (!open_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("WAL manager not open");
  }
  XIA_ASSIGN_OR_RETURN(const uint64_t lsn, writer_.Append(std::move(record)));
  XIA_RETURN_IF_ERROR(writer_.Commit(lsn));
  NotifyCommit();
  return Status::OK();
}

void WalManager::NotifyCommit() {
  {
    std::lock_guard<std::mutex> lock(repl_mu_);
    ++commit_seq_;
  }
  repl_cv_.notify_all();
}

Status WalManager::OnCommit(const engine::Statement& statement) {
  if (statement.is_insert()) {
    const engine::InsertSpec& ins = statement.insert_spec();
    return AppendAndCommit(WalRecord::Insert(ins.collection,
                                             ins.document_text));
  }
  const std::string text = engine::ToText(statement);
  // Validated here so replay can never hit a parse error on a frame that
  // passed its CRC.
  XIA_RETURN_IF_ERROR(engine::ParseStatement(text).status());
  return AppendAndCommit(WalRecord::Statement(text));
}

Status WalManager::LogCreateCollection(const std::string& collection) {
  return AppendAndCommit(WalRecord::CreateCollection(collection));
}

Status WalManager::LogCreateIndex(const std::string& name,
                                  const std::string& collection,
                                  const xpath::IndexPattern& pattern) {
  return AppendAndCommit(WalRecord::CreateIndex(name, collection, pattern));
}

Status WalManager::LogDropIndex(const std::string& name) {
  return AppendAndCommit(WalRecord::DropIndex(name));
}

Status WalManager::LogStatsRefresh(const std::string& collection) {
  return AppendAndCommit(WalRecord::StatsRefresh(collection));
}

Status WalManager::Checkpoint(const storage::DocumentStore& store,
                              const storage::Catalog& catalog) {
  if (!open_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("WAL manager not open");
  }
  XIA_RETURN_IF_ERROR(writer_.Sync());
  const uint64_t lsn = writer_.last_appended_lsn();

  std::ostringstream snapshot;
  XIA_RETURN_IF_ERROR(storage::SaveSnapshot(store, snapshot));
  XIA_RETURN_IF_ERROR(WriteFileAtomic(SnapshotPath(lsn), snapshot.str()));
  if (options_.writer.test_hook) {
    options_.writer.test_hook("checkpoint.after_snapshot");
  }

  XIA_RETURN_IF_ERROR(
      WriteFileAtomic(CatalogPath(lsn), EncodeCatalogFile(store, catalog)));

  Manifest manifest;
  manifest.checkpoint_lsn = lsn;
  manifest.has_snapshot = true;
  manifest.has_catalog = true;
  {
    std::lock_guard<std::mutex> lock(repl_mu_);
    manifest.repl_epoch = repl_epoch_;
    manifest.epoch_start_lsn = epoch_start_lsn_;
  }
  // The manifest rename is the checkpoint's commit point: a crash before
  // it recovers from the previous checkpoint + full log, after it from
  // the new snapshot + LSN-filtered log.
  XIA_RETURN_IF_ERROR(WriteManifest(ManifestPath(), manifest));
  if (options_.writer.test_hook) {
    options_.writer.test_hook("checkpoint.after_manifest");
  }

  XIA_RETURN_IF_ERROR(writer_.ResetFile(LogPath()));
  if (options_.writer.test_hook) {
    options_.writer.test_hook("checkpoint.after_reset");
  }

  DeleteStaleVersionedFiles(lsn);

  {
    std::lock_guard<std::mutex> lock(repl_mu_);
    checkpoint_lsn_ = lsn;
    ++log_epoch_;
    ++commit_seq_;
  }
  repl_cv_.notify_all();
  ++checkpoints_;
  XIA_OBS_COUNT("xia.wal.checkpoints", 1);
  return Status::OK();
}

void WalManager::DeleteStaleVersionedFiles(uint64_t lsn) {
  // Stale versioned files are garbage once the manifest moved on.
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(data_dir_, ec)) {
    const std::string name = entry.path().filename().string();
    const bool versioned = (name.rfind("snapshot-", 0) == 0 ||
                            name.rfind("catalog-", 0) == 0);
    const bool current = entry.path() == fs::path(SnapshotPath(lsn)) ||
                         entry.path() == fs::path(CatalogPath(lsn));
    if (versioned && !current) fs::remove(entry.path(), ec);
  }
}

Status WalManager::Close() {
  if (!open_.exchange(false, std::memory_order_acq_rel)) return Status::OK();
  // Wake any tail reader blocked on new commits so it observes the close.
  NotifyCommit();
  return writer_.Close();
}

uint64_t WalManager::checkpoint_lsn() const {
  std::lock_guard<std::mutex> lock(repl_mu_);
  return checkpoint_lsn_;
}

uint64_t WalManager::repl_epoch() const {
  std::lock_guard<std::mutex> lock(repl_mu_);
  return repl_epoch_;
}

uint64_t WalManager::epoch_start_lsn() const {
  std::lock_guard<std::mutex> lock(repl_mu_);
  return epoch_start_lsn_;
}

Result<uint64_t> WalManager::BumpEpoch() {
  if (!open_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("WAL manager not open");
  }
  uint64_t new_epoch = 0;
  {
    std::lock_guard<std::mutex> lock(repl_mu_);
    new_epoch = repl_epoch_ + 1;
  }
  WalRecord barrier = WalRecord::EpochBarrier(new_epoch);
  XIA_ASSIGN_OR_RETURN(const uint64_t barrier_lsn,
                       writer_.Append(std::move(barrier)));
  XIA_RETURN_IF_ERROR(writer_.Commit(barrier_lsn));
  // The barrier is durable before anyone can observe the new epoch, so a
  // crash right after promotion still recovers into the bumped epoch.
  {
    std::lock_guard<std::mutex> lock(repl_mu_);
    repl_epoch_ = new_epoch;
    epoch_start_lsn_ = barrier_lsn;
    ++commit_seq_;
  }
  repl_cv_.notify_all();
  XIA_OBS_COUNT("xia.wal.epoch_bumps", 1);
  return barrier_lsn;
}

Status WalManager::AppendReplicated(const WalRecord& record) {
  if (!open_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("WAL manager not open");
  }
  XIA_RETURN_IF_ERROR(writer_.AppendWithLsn(record));
  XIA_RETURN_IF_ERROR(writer_.Commit(record.lsn));
  if (record.type == RecordType::kEpochBarrier) {
    // Followers adopt a promotion's epoch in-band: the barrier record is
    // part of the replicated log itself.
    std::lock_guard<std::mutex> lock(repl_mu_);
    if (record.epoch > repl_epoch_) {
      repl_epoch_ = record.epoch;
      epoch_start_lsn_ = record.lsn;
    }
  }
  NotifyCommit();
  return Status::OK();
}

Result<TailBatch> WalManager::ReadTail(TailCursor* cursor, size_t max_records,
                                       double wait_s) {
  // Bound each file read so a huge backlog streams in chunks instead of
  // one giant allocation.
  constexpr size_t kTailReadCap = 4u << 20;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(wait_s < 0 ? 0 : wait_s);
  bool force_flushed = false;
  for (;;) {
    uint64_t seq_before = 0;
    {
      std::unique_lock<std::mutex> lock(repl_mu_);
      if (!open_.load(std::memory_order_acquire)) {
        return Status::FailedPrecondition("WAL manager not open");
      }
      if (cursor->log_epoch != log_epoch_) {
        // The log was reset (checkpoint): restart at the head of the new
        // incarnation. LSN filtering below makes the re-read idempotent.
        cursor->log_epoch = log_epoch_;
        cursor->offset = sizeof(kWalMagic);
      }
      if (cursor->next_lsn <= checkpoint_lsn_) {
        // The records the subscriber needs were truncated away by a
        // checkpoint; only a checkpoint transfer can catch it up.
        TailBatch batch;
        batch.need_checkpoint = true;
        return batch;
      }
      seq_before = commit_seq_;
    }

    TailBatch batch;
    bool corrupt = false;
    std::string corrupt_reason;
    {
      std::ifstream in(LogPath(), std::ios::binary);
      if (in) {
        in.seekg(static_cast<std::streamoff>(cursor->offset));
        std::string data(kTailReadCap, '\0');
        in.read(data.data(), static_cast<std::streamsize>(data.size()));
        data.resize(static_cast<size_t>(std::max<std::streamsize>(
            in.gcount(), 0)));
        size_t pos = 0;
        while (batch.payloads.size() < max_records) {
          std::string_view payload;
          std::string reason;
          const FrameParse parsed =
              ParseNextFrame(data, &pos, &payload, &reason);
          if (parsed == FrameParse::kNeedMore) break;
          if (parsed == FrameParse::kCorrupt) {
            corrupt = true;
            corrupt_reason = reason;
            break;
          }
          uint64_t lsn = 0;
          WireReader lsn_peek{payload};
          if (!lsn_peek.GetU64(&lsn)) {
            corrupt = true;
            corrupt_reason = "record payload too short for lsn";
            break;
          }
          cursor->offset += 8 + payload.size();
          if (lsn < cursor->next_lsn) continue;  // already delivered
          batch.payloads.emplace_back(payload);
          cursor->next_lsn = lsn + 1;
        }
      }
    }
    if (corrupt) {
      // Appends are sequential, so a reader can only see a prefix of the
      // writer's bytes: a complete-but-invalid frame is real corruption —
      // unless the file was swapped by a checkpoint mid-read, in which
      // case the epoch moved and the cursor just restarts.
      std::lock_guard<std::mutex> lock(repl_mu_);
      if (cursor->log_epoch != log_epoch_) continue;
      return Status::DataLoss("WAL tail corrupt at offset " +
                              std::to_string(cursor->offset) + ": " +
                              corrupt_reason);
    }
    if (!batch.payloads.empty()) return batch;

    // Committed records can still be staged in the writer (interval/off
    // fsync policies): force them into the file once before waiting.
    if (!force_flushed && writer_.last_appended_lsn() >= cursor->next_lsn) {
      force_flushed = true;
      XIA_RETURN_IF_ERROR(writer_.Sync());
      continue;
    }

    std::unique_lock<std::mutex> lock(repl_mu_);
    if (commit_seq_ != seq_before) {
      // Something committed between the file read and now; re-read
      // instead of sleeping through the missed notification.
      force_flushed = false;
      continue;
    }
    if (std::chrono::steady_clock::now() >= deadline) return batch;
    repl_cv_.wait_until(lock, deadline);
    force_flushed = false;
  }
}

Result<CheckpointImage> WalManager::ReadCheckpointImage() const {
  XIA_ASSIGN_OR_RETURN(const Manifest manifest, ReadManifest(ManifestPath()));
  CheckpointImage image;
  image.checkpoint_lsn = manifest.checkpoint_lsn;
  image.has_snapshot = manifest.has_snapshot;
  image.has_catalog = manifest.has_catalog;
  image.repl_epoch = manifest.repl_epoch;
  image.epoch_start_lsn = manifest.epoch_start_lsn;
  if (manifest.has_snapshot) {
    auto bytes = ReadWholeFile(SnapshotPath(manifest.checkpoint_lsn));
    if (!bytes.ok()) return AsCheckpointDataLoss(bytes.status());
    image.snapshot_bytes = std::move(*bytes);
  }
  if (manifest.has_catalog) {
    auto bytes = ReadWholeFile(CatalogPath(manifest.checkpoint_lsn));
    if (!bytes.ok()) return AsCheckpointDataLoss(bytes.status());
    image.catalog_bytes = std::move(*bytes);
  }
  return image;
}

Status WalManager::InstallCheckpoint(const CheckpointImage& image,
                                     storage::DocumentStore* store,
                                     storage::Catalog* catalog,
                                     storage::StatisticsCatalog* statistics) {
  if (!open_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("WAL manager not open");
  }
  const uint64_t lsn = image.checkpoint_lsn;

  // 1. Validate the whole image into staging state FIRST: a corrupt
  //    transfer must leave the live store, the files, and the manifest
  //    untouched (fail-closed, same stance as recovery).
  storage::DocumentStore staging_store;
  storage::StatisticsCatalog staging_stats;
  storage::Catalog staging_catalog(&staging_store, &staging_stats,
                                   catalog->cost_constants());
  if (image.has_snapshot) {
    std::istringstream in(image.snapshot_bytes);
    const Status loaded = storage::LoadSnapshot(in, &staging_store);
    if (!loaded.ok()) {
      return Status::DataLoss("replication snapshot image rejected: " +
                              loaded.ToString());
    }
  }
  if (image.has_catalog) {
    XIA_ASSIGN_OR_RETURN(
        const std::string payload,
        ParseFramedBytes(image.catalog_bytes, kCatalogMagic,
                         "replication catalog image"));
    XIA_RETURN_IF_ERROR(LoadCatalogPayload(
        payload, "replication catalog image", &staging_catalog));
  }

  // 2. Persist the image files (atomic, but not yet referenced).
  if (image.has_snapshot) {
    XIA_RETURN_IF_ERROR(WriteFileAtomic(SnapshotPath(lsn),
                                        image.snapshot_bytes));
  }
  if (image.has_catalog) {
    XIA_RETURN_IF_ERROR(WriteFileAtomic(CatalogPath(lsn),
                                        image.catalog_bytes));
  }
  if (options_.writer.test_hook) {
    options_.writer.test_hook("repl.snapshot.mid_install");
  }

  // 3. The manifest rename is the commit point: a crash before it rejoins
  //    from the old state, after it from the installed checkpoint.
  Manifest manifest;
  manifest.checkpoint_lsn = lsn;
  manifest.has_snapshot = image.has_snapshot;
  manifest.has_catalog = image.has_catalog;
  manifest.repl_epoch = image.repl_epoch == 0 ? 1 : image.repl_epoch;
  manifest.epoch_start_lsn = image.epoch_start_lsn;
  XIA_RETURN_IF_ERROR(WriteManifest(ManifestPath(), manifest));

  // 4. Reset the log rebased into the leader's LSN space. Anything the
  //    old log held is <= the image LSN and covered by the snapshot.
  XIA_RETURN_IF_ERROR(writer_.Sync());
  XIA_RETURN_IF_ERROR(writer_.ResetFile(LogPath(), /*next_lsn=*/lsn + 1));

  // 5. Swap the staged state in and refresh statistics over it.
  store->Swap(&staging_store);
  catalog->AdoptIndexesFrom(&staging_catalog);
  for (const std::string& coll : store->CollectionNames()) {
    auto c = store->GetCollection(coll);
    if (c.ok()) statistics->RunStats(**c);
  }

  DeleteStaleVersionedFiles(lsn);
  {
    std::lock_guard<std::mutex> lock(repl_mu_);
    checkpoint_lsn_ = lsn;
    ++log_epoch_;
    ++commit_seq_;
    repl_epoch_ = manifest.repl_epoch;
    epoch_start_lsn_ = manifest.epoch_start_lsn;
  }
  repl_cv_.notify_all();
  ++checkpoints_;
  XIA_OBS_COUNT("xia.wal.checkpoint_installs", 1);
  return Status::OK();
}

Result<uint64_t> WalManager::TruncateSuffix(
    uint64_t barrier_lsn, storage::DocumentStore* store,
    storage::Catalog* catalog, storage::StatisticsCatalog* statistics) {
  if (!open_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("WAL manager not open");
  }
  if (barrier_lsn == 0) {
    return Status::InvalidArgument("barrier LSN must be positive");
  }
  XIA_RETURN_IF_ERROR(writer_.Sync());
  XIA_ASSIGN_OR_RETURN(const Manifest manifest, ReadManifest(ManifestPath()));
  if (manifest.checkpoint_lsn >= barrier_lsn) {
    return Status::FailedPrecondition(StringPrintf(
        "local checkpoint %llu already covers LSNs at or past the epoch "
        "barrier %llu; divergence cannot be unwound in place",
        static_cast<unsigned long long>(manifest.checkpoint_lsn),
        static_cast<unsigned long long>(barrier_lsn)));
  }

  // Partition the log into the surviving prefix and the divergent
  // suffix. The log holds whole records (Sync above), so any frame that
  // fails to decode here is real corruption, not a torn tail.
  std::vector<WalRecord> keep;
  uint64_t truncated = 0;
  auto scanned = ScanLogFile(LogPath());
  if (scanned.ok()) {
    for (const std::string& payload : scanned->payloads) {
      XIA_ASSIGN_OR_RETURN(WalRecord record, DecodeRecord(payload));
      if (record.lsn >= barrier_lsn) {
        ++truncated;
        continue;
      }
      keep.push_back(std::move(record));
    }
  } else if (scanned.status().code() != StatusCode::kNotFound) {
    return Status::DataLoss(scanned.status().message());
  }

  // Stage-and-swap: rebuild checkpoint state + surviving prefix off to
  // the side first, so a corrupt checkpoint file leaves the live store
  // and the log untouched.
  storage::DocumentStore staging_store;
  storage::StatisticsCatalog staging_stats;
  storage::Catalog staging_catalog(&staging_store, &staging_stats,
                                   catalog->cost_constants());
  if (manifest.has_snapshot) {
    XIA_RETURN_IF_ERROR(AsCheckpointDataLoss(storage::LoadSnapshotFromFile(
        SnapshotPath(manifest.checkpoint_lsn), &staging_store)));
  }
  if (manifest.has_catalog) {
    XIA_RETURN_IF_ERROR(AsCheckpointDataLoss(LoadCatalogFile(
        CatalogPath(manifest.checkpoint_lsn), &staging_catalog)));
  }
  uint64_t applied_lsn = manifest.checkpoint_lsn;
  uint64_t repl_epoch = manifest.repl_epoch;
  uint64_t epoch_start_lsn = manifest.epoch_start_lsn;
  for (const WalRecord& record : keep) {
    if (record.lsn <= applied_lsn) continue;  // pre-checkpoint stragglers
    if (record.type == RecordType::kEpochBarrier &&
        record.epoch > repl_epoch) {
      repl_epoch = record.epoch;
      epoch_start_lsn = record.lsn;
    }
    XIA_RETURN_IF_ERROR(ApplyRecord(record, &staging_store, &staging_catalog,
                                    &staging_stats, {}));
    applied_lsn = record.lsn;
  }

  // Rewrite the log as exactly the surviving prefix. A crash mid-rewrite
  // is safe: recovery sees checkpoint + a shorter prefix, still
  // prefix-consistent, and the follower re-fetches the rest from the
  // leader.
  XIA_RETURN_IF_ERROR(
      writer_.ResetFile(LogPath(), manifest.checkpoint_lsn + 1));
  uint64_t last_kept = 0;
  for (const WalRecord& record : keep) {
    if (record.lsn <= manifest.checkpoint_lsn || record.lsn <= last_kept) {
      continue;
    }
    XIA_RETURN_IF_ERROR(writer_.AppendWithLsn(record));
    last_kept = record.lsn;
  }
  if (last_kept > 0) XIA_RETURN_IF_ERROR(writer_.Commit(last_kept));
  XIA_RETURN_IF_ERROR(writer_.Sync());

  store->Swap(&staging_store);
  catalog->AdoptIndexesFrom(&staging_catalog);
  for (const std::string& coll : store->CollectionNames()) {
    auto c = store->GetCollection(coll);
    if (c.ok()) statistics->RunStats(**c);
  }

  {
    std::lock_guard<std::mutex> lock(repl_mu_);
    ++log_epoch_;
    ++commit_seq_;
    repl_epoch_ = repl_epoch;
    epoch_start_lsn_ = epoch_start_lsn;
  }
  repl_cv_.notify_all();
  XIA_OBS_COUNT("xia.wal.suffix_truncations", 1);
  XIA_OBS_COUNT("xia.wal.records_truncated", truncated);
  return truncated;
}

Status WalManager::ResetForResync(storage::DocumentStore* store,
                                  storage::Catalog* catalog,
                                  storage::StatisticsCatalog* statistics) {
  if (!open_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("WAL manager not open");
  }
  XIA_RETURN_IF_ERROR(writer_.Sync());
  // Back to the fresh-data-dir state: empty manifest (the rename is the
  // commit point — before it the old state still recovers whole), empty
  // log restarting the LSN space at 1.
  XIA_RETURN_IF_ERROR(WriteManifest(ManifestPath(), Manifest{}));
  XIA_RETURN_IF_ERROR(writer_.ResetFile(LogPath(), /*next_lsn=*/1));
  DeleteStaleVersionedFiles(0);

  storage::DocumentStore empty_store;
  storage::StatisticsCatalog empty_stats;
  storage::Catalog empty_catalog(&empty_store, &empty_stats,
                                 catalog->cost_constants());
  store->Swap(&empty_store);
  catalog->AdoptIndexesFrom(&empty_catalog);
  for (const std::string& coll : store->CollectionNames()) {
    auto c = store->GetCollection(coll);
    if (c.ok()) statistics->RunStats(**c);
  }

  {
    std::lock_guard<std::mutex> lock(repl_mu_);
    checkpoint_lsn_ = 0;
    ++log_epoch_;
    ++commit_seq_;
    repl_epoch_ = 1;
    epoch_start_lsn_ = 0;
  }
  repl_cv_.notify_all();
  XIA_OBS_COUNT("xia.wal.resync_resets", 1);
  return Status::OK();
}

WalStatus WalManager::GetStatus() const {
  WalStatus status;
  status.data_dir = data_dir_;
  status.policy = options_.writer.policy;
  status.next_lsn = writer_.next_lsn();
  status.durable_lsn = writer_.durable_lsn();
  status.checkpoint_lsn = checkpoint_lsn();
  status.appended_records = writer_.appended_records();
  status.log_bytes = writer_.file_bytes();
  status.fsyncs = writer_.fsyncs();
  status.checkpoints = checkpoints_;
  {
    std::lock_guard<std::mutex> lock(repl_mu_);
    status.repl_epoch = repl_epoch_;
    status.epoch_start_lsn = epoch_start_lsn_;
  }
  return status;
}

}  // namespace xia::wal
