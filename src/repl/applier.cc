#include "repl/applier.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "fault/fault.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "wal/replay.h"

namespace xia::repl {

namespace {
constexpr size_t kRecvChunk = 64 * 1024;
constexpr double kConnectTimeoutSeconds = 2.0;
/// Receive poll granularity; also the stop-latency bound while idle.
constexpr double kPollSeconds = 0.05;
}  // namespace

Applier::Applier(ApplierOptions options, wal::WalManager* wal,
                 std::shared_mutex* db_mu, storage::DocumentStore* store,
                 storage::Catalog* catalog,
                 storage::StatisticsCatalog* statistics)
    : options_(std::move(options)),
      wal_(wal),
      db_mu_(db_mu),
      store_(store),
      catalog_(catalog),
      statistics_(statistics) {}

Applier::~Applier() { Stop(); }

void Applier::Start() {
  if (started_.exchange(true)) return;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread(&Applier::Run, this);
}

void Applier::Stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  started_.store(false, std::memory_order_release);
}

ApplierStats Applier::GetStats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void Applier::RecordError(const Status& status) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.last_error = status.ToString();
  stats_.connected = false;
}

void Applier::Run() {
  Random jitter(options_.jitter_seed);
  double backoff = options_.backoff_initial_s;
  while (!stop_.load(std::memory_order_acquire)) {
    const Status ended = RunOnce();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.connected = false;
      if (!ended.ok()) stats_.last_error = ended.ToString();
      if (!stats_.sticky_error.empty()) return;  // halted: divergence
    }
    if (stop_.load(std::memory_order_acquire)) return;
    if (ended.ok()) {
      backoff = options_.backoff_initial_s;  // clean end: retry promptly
    }
    // Jittered exponential backoff (the OnlineAdvisor shape): sleep
    // 0.5x..1x of the current backoff, in small slices so Stop() is
    // never blocked behind a long sleep.
    const double sleep_s = backoff * (0.5 + 0.5 * jitter.NextDouble());
    Stopwatch slept;
    while (slept.ElapsedSeconds() < sleep_s &&
           !stop_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    backoff = std::min(backoff * options_.backoff_multiplier,
                       options_.backoff_max_s);
  }
}

Status Applier::RunOnce() {
  // Resume from what the local WAL already holds: recovery has applied
  // everything durable, so the first LSN we need is the next one.
  const uint64_t durable =
      std::max(wal_->GetStatus().next_lsn - 1, wal_->checkpoint_lsn());
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.applied_lsn = durable;
  }

  Result<net::Socket> connected = net::ConnectTcp(
      options_.leader_host, options_.leader_port, kConnectTimeoutSeconds);
  if (!connected.ok()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.connect_failures;
    return connected.status();
  }
  net::Socket socket = std::move(*connected);

  net::ReplSubscribeRequest subscribe;
  subscribe.follower_id = options_.follower_id;
  subscribe.start_lsn = durable + 1;
  subscribe.epoch = wal_->repl_epoch();
  XIA_RETURN_IF_ERROR(socket.SendAll(
      net::EncodeFrame(net::MsgType::kReplSubscribe, 0,
                       net::EncodeReplSubscribeRequest(subscribe))));
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.connected = true;
    ++stats_.resubscribes;
  }
  XIA_OBS_COUNT("xia.repl.subscribes", 1);

  net::FrameReader reader;
  char buf[kRecvChunk];
  Stopwatch since_ack;
  size_t unacked = 0;
  const auto send_ack = [&]() -> Status {
    net::ReplAckPayload ack;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ack.acked_lsn = stats_.applied_lsn;
    }
    // The ack's request_id carries our witnessed epoch: a deposed
    // leader reading an ack from a newer epoch stops streaming.
    XIA_RETURN_IF_ERROR(socket.SendAll(
        net::EncodeFrame(net::MsgType::kReplAck, wal_->repl_epoch(),
                         net::EncodeReplAckPayload(ack))));
    unacked = 0;
    since_ack.Restart();
    return Status::OK();
  };

  while (!stop_.load(std::memory_order_acquire)) {
    // Drain buffered frames before reading more bytes.
    for (;;) {
      net::Frame frame;
      std::string parse_error;
      const net::FrameReader::Next next = reader.Poll(&frame, &parse_error);
      if (next == net::FrameReader::Next::kNeedMore) {
        // A partially buffered frame is the harness's mid-frame kill
        // window: a record's bytes half-arrived and nothing applied.
        if (reader.buffered() > 0) Hook("repl.recv.mid_frame");
        break;
      }
      if (next == net::FrameReader::Next::kBad) {
        // A flipped bit anywhere in the stream lands here (frame CRC):
        // nothing was applied; resubscribe from the last good LSN.
        return Status::ParseError("leader stream: " + parse_error);
      }
      // Stale-epoch fencing: a stream frame stamped with an epoch older
      // than what this node has witnessed comes from a deposed leader —
      // reject it, never apply (stamp 0 = a PR-7 leader, epoch 1).
      if ((frame.type == net::MsgType::kReplFrame ||
           frame.type == net::MsgType::kReplSnapshot) &&
          frame.request_id != 0 && frame.request_id < wal_->repl_epoch()) {
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.fenced_frames;
        }
        XIA_OBS_COUNT("xia.repl.fenced_frames", 1);
        return Status::Fenced(
            "stream frame from stale epoch " +
            std::to_string(frame.request_id) + ", local epoch is " +
            std::to_string(wal_->repl_epoch()));
      }
      Status handled = Status::OK();
      switch (frame.type) {
        case net::MsgType::kReplFrame:
          handled = HandleRecordFrame(frame.payload);
          break;
        case net::MsgType::kReplSnapshot:
          handled = HandleSnapshotFrame(frame.payload);
          break;
        case net::MsgType::kReplHello:
          handled = HandleHelloFrame(frame.payload);
          break;
        case net::MsgType::kError: {
          XIA_ASSIGN_OR_RETURN(const net::ErrorReply err,
                               net::DecodeErrorReply(frame.payload));
          return ErrorReplyToStatus(err);
        }
        default:
          return Status::InvalidArgument(
              "unexpected frame type on replication stream");
      }
      XIA_RETURN_IF_ERROR(handled);
      ++unacked;
    }

    if (unacked > 0) {
      // Ack eagerly once the pipe is drained: a quorum-commit leader is
      // parked on exactly this ack, and batching past the last in-flight
      // frame would charge every synchronous commit the full poll
      // interval. With more bytes already queued, batch as before.
      XIA_ASSIGN_OR_RETURN(const bool more_inflight,
                           socket.WaitReadable(0));
      if (!more_inflight || unacked >= options_.ack_every_records ||
          since_ack.ElapsedSeconds() >= options_.ack_interval_s) {
        XIA_RETURN_IF_ERROR(send_ack());
      }
    }

    if (options_.checkpoint_every_records > 0 &&
        since_checkpoint_ >= options_.checkpoint_every_records) {
      std::unique_lock<std::shared_mutex> lock(*db_mu_);
      XIA_RETURN_IF_ERROR(wal_->Checkpoint(*store_, *catalog_));
      since_checkpoint_ = 0;
    }

    XIA_ASSIGN_OR_RETURN(const bool readable,
                         socket.WaitReadable(kPollSeconds));
    if (!readable) {
      // Idle: keep the leader's acked-LSN view fresh anyway.
      if (unacked > 0) XIA_RETURN_IF_ERROR(send_ack());
      continue;
    }
    XIA_FAULT_INJECT(fault::points::kReplRecv);
    const Result<size_t> got = socket.Recv(buf, sizeof(buf));
    XIA_RETURN_IF_ERROR(got.status());
    if (*got == 0) {
      return Status::Unavailable("leader closed the replication stream");
    }
    reader.Feed(std::string_view(buf, *got));
  }
  // Clean stop: best-effort final ack so the leader's view is current.
  if (unacked > 0) (void)send_ack();
  return Status::OK();
}

Status Applier::HandleRecordFrame(const std::string& payload) {
  XIA_ASSIGN_OR_RETURN(const wal::WalRecord record,
                       wal::DecodeRecord(payload));
  uint64_t applied = 0;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    applied = stats_.applied_lsn;
  }
  if (record.lsn <= applied) {
    // Redelivery after a resubscribe: already durable and applied.
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.duplicates_skipped;
    XIA_OBS_COUNT("xia.repl.duplicates_skipped", 1);
    return Status::OK();
  }
  if (record.lsn != applied + 1) {
    // A gap means this stream skipped something; resubscribe from the
    // last good LSN rather than apply out of order.
    return Status::Unavailable(
        "replication stream gap: got lsn " + std::to_string(record.lsn) +
        ", expected " + std::to_string(applied + 1));
  }

  std::unique_lock<std::shared_mutex> lock(*db_mu_);
  XIA_FAULT_INJECT(fault::points::kReplApply);
  Hook("repl.apply.before_wal");
  // Log first, then apply: a crash between the two replays the record
  // from the local WAL on restart. In-process failures past this point
  // are divergences (the leader applied this record successfully), so
  // they halt the applier sticky instead of retrying.
  Status status = wal_->AppendReplicated(record);
  if (!status.ok()) {
    std::lock_guard<std::mutex> slock(stats_mu_);
    stats_.sticky_error = "replicated append failed: " + status.ToString();
    return status;
  }
  Hook("repl.apply.mid_apply");
  status = wal::ApplyRecord(record, store_, catalog_, statistics_);
  if (!status.ok()) {
    std::lock_guard<std::mutex> slock(stats_mu_);
    stats_.sticky_error =
        "record " + std::to_string(record.lsn) +
        " applied on the leader but failed locally: " + status.ToString();
    return status;
  }
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    stats_.applied_lsn = record.lsn;
    ++stats_.records_applied;
  }
  ++since_checkpoint_;
  XIA_OBS_COUNT("xia.repl.records_applied", 1);
  XIA_OBS_GAUGE_SET("xia.repl.applied_lsn", static_cast<double>(record.lsn));
  return Status::OK();
}

Status Applier::HandleSnapshotFrame(const std::string& payload) {
  XIA_ASSIGN_OR_RETURN(net::ReplSnapshotPayload snap,
                       net::DecodeReplSnapshotPayload(payload));
  Hook("repl.snapshot.before_install");
  wal::CheckpointImage image;
  image.checkpoint_lsn = snap.checkpoint_lsn;
  image.has_snapshot = snap.has_snapshot;
  image.has_catalog = snap.has_catalog;
  image.snapshot_bytes = std::move(snap.snapshot_bytes);
  image.catalog_bytes = std::move(snap.catalog_bytes);
  image.repl_epoch = snap.repl_epoch;
  image.epoch_start_lsn = snap.epoch_start_lsn;
  {
    std::unique_lock<std::shared_mutex> lock(*db_mu_);
    // Fail-closed: a corrupt image returns kDataLoss with nothing
    // touched, and the retry loop resubscribes.
    XIA_RETURN_IF_ERROR(
        wal_->InstallCheckpoint(image, store_, catalog_, statistics_));
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.applied_lsn = image.checkpoint_lsn;
    ++stats_.snapshots_installed;
  }
  XIA_OBS_COUNT("xia.repl.snapshots_installed", 1);
  XIA_OBS_GAUGE_SET("xia.repl.applied_lsn",
                    static_cast<double>(image.checkpoint_lsn));
  return Status::OK();
}

Status Applier::HandleHelloFrame(const std::string& payload) {
  XIA_ASSIGN_OR_RETURN(const net::ReplHelloPayload hello,
                       net::DecodeReplHelloPayload(payload));
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.leader_epoch = hello.leader_epoch;
  }
  const uint64_t local_epoch = wal_->repl_epoch();
  if (hello.leader_epoch < local_epoch) {
    // We are subscribed to a deposed leader (admin misdirection, or the
    // promotion raced our subscribe). Do not apply anything from it.
    XIA_OBS_COUNT("xia.repl.fenced_hellos", 1);
    return Status::Fenced(
        "leader announced stale epoch " +
        std::to_string(hello.leader_epoch) + ", local epoch is " +
        std::to_string(local_epoch));
  }
  const uint64_t durable =
      std::max(wal_->GetStatus().next_lsn - 1, wal_->checkpoint_lsn());
  if (hello.leader_epoch > local_epoch && hello.epoch_start_lsn > 0 &&
      durable >= hello.epoch_start_lsn) {
    // Divergence: our log holds LSNs at/past the new epoch's barrier,
    // but they were written by the old epoch (we never witnessed the
    // barrier). Unwind them before accepting the new epoch's history.
    Hook("repl.hello.before_truncate");
    if (wal_->checkpoint_lsn() < hello.epoch_start_lsn) {
      uint64_t truncated = 0;
      {
        std::unique_lock<std::shared_mutex> lock(*db_mu_);
        XIA_ASSIGN_OR_RETURN(
            truncated, wal_->TruncateSuffix(hello.epoch_start_lsn, store_,
                                            catalog_, statistics_));
      }
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.suffix_truncations;
        stats_.records_truncated += truncated;
      }
      XIA_OBS_COUNT("xia.repl.suffix_truncations", 1);
      return Status::Unavailable(
          "truncated " + std::to_string(truncated) +
          " diverged records past barrier " +
          std::to_string(hello.epoch_start_lsn) + "; resubscribing");
    }
    // A local checkpoint already swallowed the divergent records; they
    // cannot be unwound in place, so fall back to a full resync.
    {
      std::unique_lock<std::shared_mutex> lock(*db_mu_);
      XIA_RETURN_IF_ERROR(
          wal_->ResetForResync(store_, catalog_, statistics_));
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.full_resyncs;
    }
    XIA_OBS_COUNT("xia.repl.full_resyncs", 1);
    return Status::Unavailable(
        "local checkpoint covers diverged records; reset for full resync");
  }
  return Status::OK();
}

}  // namespace xia::repl
