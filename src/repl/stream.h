// Leader side of WAL shipping: RunReplStream turns one server session
// into a replication stream (DESIGN §14).
//
// After a follower's kReplSubscribe frame, the session thread calls
// RunReplStream and never returns to request/response dispatch: the
// function tails the leader's WAL (WalManager::ReadTail) and pushes each
// committed record to the follower as a kReplFrame, interleaving
// kReplSnapshot transfers whenever the follower's position predates the
// checkpoint horizon (join, or rejoin after falling behind a
// checkpoint). Follower kReplAck frames are drained opportunistically
// between batches (Socket::WaitReadable) and recorded in the ReplHub.
//
// The stream holds NO locks while blocked: ReadTail waits on the WAL's
// own commit signal, and the shared database lock is taken only for the
// duration of reading a checkpoint image's bytes.

#ifndef XIA_REPL_STREAM_H_
#define XIA_REPL_STREAM_H_

#include <atomic>
#include <shared_mutex>

#include "net/socket.h"
#include "net/wire.h"
#include "repl/hub.h"
#include "util/status.h"
#include "wal/manager.h"

namespace xia::repl {

/// Everything a stream needs from its server.
struct StreamContext {
  wal::WalManager* wal = nullptr;
  /// The server's database lock (shared while reading checkpoint files).
  std::shared_mutex* db_mu = nullptr;
  ReplHub* hub = nullptr;
  /// Server shutdown flag; the stream exits promptly once set.
  std::atomic<bool>* stopping = nullptr;
};

/// Streams until the follower disconnects (OK), the server stops (OK),
/// or an unrecoverable send/read error occurs (the error). Always
/// reports the disconnect to the hub before returning.
Status RunReplStream(net::Socket* socket,
                     const net::ReplSubscribeRequest& subscribe,
                     const StreamContext& ctx);

}  // namespace xia::repl

#endif  // XIA_REPL_STREAM_H_
