// Leader side of WAL shipping: RunReplStream turns one server session
// into a replication stream (DESIGN §14, epoch fencing §15).
//
// After a follower's kReplSubscribe frame, the session thread calls
// RunReplStream and never returns to request/response dispatch: the
// function announces the leader's epoch with a kReplHello, then tails
// the leader's WAL (WalManager::ReadTail) and pushes each committed
// record to the follower as a kReplFrame, interleaving kReplSnapshot
// transfers whenever the follower's position predates the checkpoint
// horizon (join, or rejoin after falling behind a checkpoint). Follower
// kReplAck frames are drained opportunistically between batches
// (Socket::WaitReadable) and recorded in the ReplHub.
//
// Epoch fencing: every outbound stream frame carries the leader's
// current epoch in the request_id field. A subscribe whose witnessed
// epoch is HIGHER than the leader's is answered with kFenced and
// dropped — this node was deposed and must not stream stale history.
// An inbound ack stamped with a higher epoch, or the demoted flag
// turning true, likewise ends the stream immediately.
//
// The stream holds NO locks while blocked: ReadTail waits on the WAL's
// own commit signal, and the shared database lock is taken only for the
// duration of reading a checkpoint image's bytes.

#ifndef XIA_REPL_STREAM_H_
#define XIA_REPL_STREAM_H_

#include <atomic>
#include <shared_mutex>

#include "net/socket.h"
#include "net/wire.h"
#include "repl/hub.h"
#include "util/status.h"
#include "wal/manager.h"

namespace xia::repl {

/// Everything a stream needs from its server.
struct StreamContext {
  wal::WalManager* wal = nullptr;
  /// The server's database lock (shared while reading checkpoint files).
  std::shared_mutex* db_mu = nullptr;
  ReplHub* hub = nullptr;
  /// Server shutdown flag; the stream exits promptly once set.
  std::atomic<bool>* stopping = nullptr;
  /// True once this server was demoted to follower (deposed leader);
  /// the stream exits promptly rather than ship post-deposition frames.
  /// Optional — a null pointer means the role can never change.
  std::atomic<bool>* demoted = nullptr;
  /// Crash-harness hook, fired as "repl.stream.mid_send" after each
  /// frame goes out (see WalTestHook). Empty in production.
  wal::WalTestHook test_hook;
};

/// Streams until the follower disconnects (OK), the server stops (OK),
/// or an unrecoverable send/read error occurs (the error). Always
/// reports the disconnect to the hub before returning.
Status RunReplStream(net::Socket* socket,
                     const net::ReplSubscribeRequest& subscribe,
                     const StreamContext& ctx);

}  // namespace xia::repl

#endif  // XIA_REPL_STREAM_H_
