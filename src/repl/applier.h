// Follower side of WAL shipping: a background thread that subscribes to
// the leader and replays its committed records locally (DESIGN §14).
//
// Rejoin state machine (each transition is crash-safe — the follower can
// be SIGKILLed anywhere and recover by rerunning it):
//
//   CONNECT     dial the leader with jittered exponential backoff (the
//               OnlineAdvisor backoff shape: 0.05s initial, x2, capped).
//   SUBSCRIBE   start_lsn = local durable LSN + 1 (whatever the local
//               WAL already holds is never requested again); the
//               subscribe carries the highest epoch this node has
//               witnessed so a deposed leader cannot stream to us.
//   HELLO       the leader announces its epoch and barrier LSN first.
//               A rejoining deposed leader detects divergence here: if
//               the leader's epoch is newer and our log already holds
//               the barrier LSN, everything at/past the barrier is dead
//               history from our old epoch — TruncateSuffix unwinds it
//               (or ResetForResync when a checkpoint swallowed it), and
//               the applier resubscribes from the surviving prefix.
//   CATCH-UP    leader answers with a kReplSnapshot when start_lsn
//               predates its checkpoint horizon; InstallCheckpoint
//               validates the image fail-closed, commits it via the
//               MANIFEST rename, and rebases the local log.
//   STREAM      per kReplFrame: duplicate LSNs (redelivery after a
//               resubscribe) are skipped; the next expected LSN is
//               appended to the local WAL first, then applied through
//               the same wal::ApplyRecord used by recovery; a gap or a
//               record that fails to decode forces a resubscribe from
//               the last good LSN. Acks flow back on a small cadence.
//
// The local WAL append happens BEFORE the in-memory apply: if the
// process dies between the two, recovery replays the record from the
// local log — the exact window the crash harness's mid-apply kill
// exercises. A record is acked only after both succeeded.
//
// Lock order: db_mu (exclusive, per record/snapshot) -> WAL internals.
// The applier never holds db_mu while blocked on the network.

#ifndef XIA_REPL_APPLIER_H_
#define XIA_REPL_APPLIER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>

#include "storage/catalog.h"
#include "storage/document_store.h"
#include "storage/statistics.h"
#include "util/status.h"
#include "wal/manager.h"
#include "wal/writer.h"

namespace xia::repl {

struct ApplierOptions {
  std::string leader_host = "127.0.0.1";
  uint16_t leader_port = 0;
  std::string follower_id = "follower";
  /// Ack at least every N applied records...
  size_t ack_every_records = 32;
  /// ...and whenever this much time passed with unacked progress.
  double ack_interval_s = 0.05;
  /// Run a local checkpoint every N applied records (0 = only on stop).
  size_t checkpoint_every_records = 0;
  /// Reconnect backoff (OnlineAdvisor shape): jittered exponential.
  double backoff_initial_s = 0.05;
  double backoff_multiplier = 2.0;
  double backoff_max_s = 2.0;
  /// Seed for the backoff jitter (deterministic tests).
  uint64_t jitter_seed = 42;
  /// Crash-harness hook, called at named points (see DESIGN §14).
  wal::WalTestHook test_hook;
};

struct ApplierStats {
  uint64_t applied_lsn = 0;
  uint64_t records_applied = 0;
  uint64_t duplicates_skipped = 0;
  uint64_t snapshots_installed = 0;
  uint64_t resubscribes = 0;
  uint64_t connect_failures = 0;
  /// Epoch the leader announced in its last kReplHello (0 = none yet).
  uint64_t leader_epoch = 0;
  /// Divergence repairs performed (deposed-leader rejoin).
  uint64_t suffix_truncations = 0;
  uint64_t records_truncated = 0;
  uint64_t full_resyncs = 0;
  /// Stale-epoch frames rejected (kFenced).
  uint64_t fenced_frames = 0;
  bool connected = false;
  /// Non-empty after an unrecoverable divergence; the applier is halted.
  std::string sticky_error;
  std::string last_error;
};

/// The follower's replication client. Owns one background thread.
class Applier {
 public:
  Applier(ApplierOptions options, wal::WalManager* wal,
          std::shared_mutex* db_mu, storage::DocumentStore* store,
          storage::Catalog* catalog, storage::StatisticsCatalog* statistics);
  ~Applier();

  Applier(const Applier&) = delete;
  Applier& operator=(const Applier&) = delete;

  void Start();
  void Stop();

  ApplierStats GetStats() const;

 private:
  void Run();
  /// One connect+subscribe+stream attempt; returns why it ended.
  Status RunOnce();
  Status HandleRecordFrame(const std::string& payload);
  Status HandleSnapshotFrame(const std::string& payload);
  /// Divergence detection + repair on the leader's epoch announcement.
  Status HandleHelloFrame(const std::string& payload);
  void Hook(const char* point) {
    if (options_.test_hook) options_.test_hook(point);
  }
  void RecordError(const Status& status);

  const ApplierOptions options_;
  wal::WalManager* const wal_;
  std::shared_mutex* const db_mu_;
  storage::DocumentStore* const store_;
  storage::Catalog* const catalog_;
  storage::StatisticsCatalog* const statistics_;

  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};

  mutable std::mutex stats_mu_;
  ApplierStats stats_;  // guarded by stats_mu_
  /// Records applied since the last local checkpoint.
  uint64_t since_checkpoint_ = 0;
};

}  // namespace xia::repl

#endif  // XIA_REPL_APPLIER_H_
