#include "repl/hub.h"

#include <algorithm>

#include "obs/metrics.h"

namespace xia::repl {

void ReplHub::OnSubscribe(const std::string& follower_id,
                          uint64_t start_lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  FollowerInfo& info = followers_[follower_id];
  info.follower_id = follower_id;
  info.subscribed_from = start_lsn;
  info.streaming = true;
  ++info.subscribes;
  PublishGaugesLocked();
}

void ReplHub::OnAck(const std::string& follower_id, uint64_t acked_lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = followers_.find(follower_id);
  if (it == followers_.end()) return;
  it->second.acked_lsn = std::max(it->second.acked_lsn, acked_lsn);
  PublishGaugesLocked();
}

void ReplHub::OnDisconnect(const std::string& follower_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = followers_.find(follower_id);
  if (it == followers_.end()) return;
  it->second.streaming = false;
  PublishGaugesLocked();
}

std::vector<FollowerInfo> ReplHub::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FollowerInfo> out;
  out.reserve(followers_.size());
  for (const auto& [id, info] : followers_) out.push_back(info);
  return out;
}

uint64_t ReplHub::MinAckedLsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t min_lsn = 0;
  bool any = false;
  for (const auto& [id, info] : followers_) {
    if (!info.streaming) continue;
    min_lsn = any ? std::min(min_lsn, info.acked_lsn) : info.acked_lsn;
    any = true;
  }
  return any ? min_lsn : 0;
}

void ReplHub::PublishGaugesLocked() const {
  size_t streaming = 0;
  uint64_t min_acked = 0;
  bool any = false;
  for (const auto& [id, info] : followers_) {
    if (!info.streaming) continue;
    ++streaming;
    min_acked = any ? std::min(min_acked, info.acked_lsn) : info.acked_lsn;
    any = true;
  }
  XIA_OBS_GAUGE_SET("xia.repl.followers_streaming",
                static_cast<double>(streaming));
  XIA_OBS_GAUGE_SET("xia.repl.min_acked_lsn", static_cast<double>(min_acked));
}

}  // namespace xia::repl
