#include "repl/hub.h"

#include <algorithm>

#include "obs/metrics.h"

namespace xia::repl {

void ReplHub::OnSubscribe(const std::string& follower_id,
                          uint64_t start_lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  PruneLocked();
  FollowerInfo& info = followers_[follower_id];
  info.follower_id = follower_id;
  info.subscribed_from = start_lsn;
  info.streaming = true;
  ++info.subscribes;
  disconnected_at_.erase(follower_id);
  PublishGaugesLocked();
}

void ReplHub::OnAck(const std::string& follower_id, uint64_t acked_lsn) {
  bool advanced = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    PruneLocked();
    auto it = followers_.find(follower_id);
    if (it == followers_.end()) return;
    if (acked_lsn > it->second.acked_lsn) {
      it->second.acked_lsn = acked_lsn;
      advanced = true;
    }
    PublishGaugesLocked();
  }
  // Broadcast outside the lock: waiters re-take it to re-count anyway.
  if (advanced) ack_cv_.notify_all();
}

void ReplHub::OnDisconnect(const std::string& follower_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = followers_.find(follower_id);
  if (it == followers_.end()) return;
  it->second.streaming = false;
  disconnected_at_[follower_id] = Clock::now();
  PruneLocked();
  PublishGaugesLocked();
}

size_t ReplHub::CountAckedLocked(uint64_t lsn) const {
  size_t n = 0;
  for (const auto& [id, info] : followers_) {
    if (info.acked_lsn >= lsn) ++n;
  }
  return n;
}

size_t ReplHub::CountAcked(uint64_t lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  PruneLocked();
  return CountAckedLocked(lsn);
}

bool ReplHub::WaitForQuorum(uint64_t lsn, size_t k, double timeout_s) {
  if (k == 0) return true;
  std::unique_lock<std::mutex> lock(mu_);
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_s));
  return ack_cv_.wait_until(lock, deadline, [&] {
    return CountAckedLocked(lsn) >= k;
  });
}

std::vector<FollowerInfo> ReplHub::Snapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  PruneLocked();
  std::vector<FollowerInfo> out;
  out.reserve(followers_.size());
  for (const auto& [id, info] : followers_) out.push_back(info);
  return out;
}

uint64_t ReplHub::MinAckedLsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t min_lsn = 0;
  bool any = false;
  for (const auto& [id, info] : followers_) {
    if (!info.streaming) continue;
    min_lsn = any ? std::min(min_lsn, info.acked_lsn) : info.acked_lsn;
    any = true;
  }
  return any ? min_lsn : 0;
}

void ReplHub::PruneLocked() {
  if (disconnected_ttl_s_ <= 0 || disconnected_at_.empty()) return;
  const auto cutoff =
      Clock::now() - std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(disconnected_ttl_s_));
  for (auto it = disconnected_at_.begin(); it != disconnected_at_.end();) {
    if (it->second <= cutoff) {
      followers_.erase(it->first);
      XIA_OBS_COUNT("xia.repl.followers_pruned", 1);
      it = disconnected_at_.erase(it);
    } else {
      ++it;
    }
  }
}

void ReplHub::PublishGaugesLocked() const {
  size_t streaming = 0;
  uint64_t min_acked = 0;
  bool any = false;
  for (const auto& [id, info] : followers_) {
    if (!info.streaming) continue;
    ++streaming;
    min_acked = any ? std::min(min_acked, info.acked_lsn) : info.acked_lsn;
    any = true;
  }
  XIA_OBS_GAUGE_SET("xia.repl.followers_streaming",
                static_cast<double>(streaming));
  XIA_OBS_GAUGE_SET("xia.repl.min_acked_lsn", static_cast<double>(min_acked));
}

}  // namespace xia::repl
