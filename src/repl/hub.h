// xia::repl — WAL-shipping replication (DESIGN §14, §15).
//
// ReplHub is the leader's view of its followers: which follower_ids are
// currently streaming and the highest LSN each has acknowledged as
// applied. It is pure bookkeeping — the per-follower streamer threads
// (stream.h) do the work and report in here — but it is what makes
// replication observable (xia.repl.* gauges, `repl status`) and, since
// quorum-acknowledged commits, what group commit blocks on:
// WaitForQuorum parks a committing session until K distinct followers
// have acked the mutation's LSN, and OnAck broadcasts to wake waiters.
//
// Followers that disconnect are kept for a grace TTL so a bouncing
// follower keeps its acked-LSN history across a quick rejoin, then
// pruned (lazily, on the next hub call) so a leader that outlives many
// transient followers does not accrete state forever.
//
// The hub mutex is a leaf lock: never held while sending, reading the
// WAL, or holding the database lock. WaitForQuorum *waits* on the hub's
// condition variable, but the caller must not hold any other lock while
// calling it (the server releases the database lock first).

#ifndef XIA_REPL_HUB_H_
#define XIA_REPL_HUB_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace xia::repl {

/// One follower as the leader sees it.
struct FollowerInfo {
  std::string follower_id;
  /// Highest LSN the follower reported applied (0 = none yet).
  uint64_t acked_lsn = 0;
  /// LSN the follower last subscribed from.
  uint64_t subscribed_from = 0;
  /// True while a stream session is attached under this id.
  bool streaming = false;
  /// Total subscribe calls seen for this id (rejoins + resubscribes).
  uint64_t subscribes = 0;
};

class ReplHub {
 public:
  /// `disconnected_ttl_s` is how long a disconnected follower's entry
  /// survives before pruning; 0 keeps entries forever (the PR-7
  /// behavior, used by tests that inspect history after a disconnect).
  explicit ReplHub(double disconnected_ttl_s = 0)
      : disconnected_ttl_s_(disconnected_ttl_s) {}

  /// Registers (or re-registers) a follower at stream start.
  void OnSubscribe(const std::string& follower_id, uint64_t start_lsn);

  /// Records an acked LSN (monotonic per follower; stale acks ignored)
  /// and wakes any quorum waiters the ack could satisfy.
  void OnAck(const std::string& follower_id, uint64_t acked_lsn);

  /// Marks the follower's stream as detached. State is kept for the
  /// grace TTL so a rejoin continues the same acked-LSN history, then
  /// pruned.
  void OnDisconnect(const std::string& follower_id);

  /// Blocks until at least `k` distinct followers have acked an LSN
  /// >= `lsn`, or `timeout_s` elapses. Returns true when the quorum was
  /// reached. k == 0 returns true immediately. Call with NO other locks
  /// held (notably not the database lock).
  bool WaitForQuorum(uint64_t lsn, size_t k, double timeout_s);

  /// How many distinct followers have acked an LSN >= `lsn` right now.
  /// Prunes expired disconnected entries first (like every hub call, so
  /// a quiet leader's `repl status` does not show ghosts forever).
  size_t CountAcked(uint64_t lsn);

  std::vector<FollowerInfo> Snapshot();

  /// Lowest acked LSN across currently streaming followers (0 when none
  /// are streaming) — the replication horizon a leader could truncate to.
  uint64_t MinAckedLsn() const;

 private:
  using Clock = std::chrono::steady_clock;

  void PublishGaugesLocked() const;
  /// Drops disconnected entries whose TTL expired (no-op with ttl 0).
  void PruneLocked();
  size_t CountAckedLocked(uint64_t lsn) const;

  const double disconnected_ttl_s_;

  mutable std::mutex mu_;
  std::condition_variable ack_cv_;
  std::map<std::string, FollowerInfo> followers_;
  /// When each currently disconnected follower detached (absent while
  /// streaming); drives TTL pruning.
  std::map<std::string, Clock::time_point> disconnected_at_;
};

}  // namespace xia::repl

#endif  // XIA_REPL_HUB_H_
