// xia::repl — WAL-shipping replication (DESIGN §14).
//
// ReplHub is the leader's view of its followers: which follower_ids are
// currently streaming and the highest LSN each has acknowledged as
// applied. It is pure bookkeeping — the per-follower streamer threads
// (stream.h) do the work and report in here — but it is what makes
// replication observable: the hub publishes xia.repl.* gauges and is the
// source for `xia repl status`-style introspection in tests and tools.
//
// The hub mutex is a leaf lock: never held while sending, reading the
// WAL, or holding the database lock.

#ifndef XIA_REPL_HUB_H_
#define XIA_REPL_HUB_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace xia::repl {

/// One follower as the leader sees it.
struct FollowerInfo {
  std::string follower_id;
  /// Highest LSN the follower reported applied (0 = none yet).
  uint64_t acked_lsn = 0;
  /// LSN the follower last subscribed from.
  uint64_t subscribed_from = 0;
  /// True while a stream session is attached under this id.
  bool streaming = false;
  /// Total subscribe calls seen for this id (rejoins + resubscribes).
  uint64_t subscribes = 0;
};

class ReplHub {
 public:
  /// Registers (or re-registers) a follower at stream start.
  void OnSubscribe(const std::string& follower_id, uint64_t start_lsn);

  /// Records an acked LSN (monotonic per follower; stale acks ignored).
  void OnAck(const std::string& follower_id, uint64_t acked_lsn);

  /// Marks the follower's stream as detached (state is kept so a rejoin
  /// continues the same acked-LSN history).
  void OnDisconnect(const std::string& follower_id);

  std::vector<FollowerInfo> Snapshot() const;

  /// Lowest acked LSN across currently streaming followers (0 when none
  /// are streaming) — the replication horizon a leader could truncate to.
  uint64_t MinAckedLsn() const;

 private:
  void PublishGaugesLocked() const;

  mutable std::mutex mu_;
  std::map<std::string, FollowerInfo> followers_;
};

}  // namespace xia::repl

#endif  // XIA_REPL_HUB_H_
