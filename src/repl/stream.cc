#include "repl/stream.h"

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>

#include "fault/fault.h"
#include "obs/metrics.h"

namespace xia::repl {

namespace {

constexpr size_t kBatchRecords = 256;
/// How long one ReadTail blocks; bounds stop-latency when idle.
constexpr double kTailWaitSeconds = 0.05;
constexpr size_t kRecvChunk = 4 * 1024;

/// The follower->leader half of a stream session, run on its own thread
/// so an ack wakes quorum waiters the moment it arrives — a quorum
/// commit must not wait out the sender's WAL-tail poll interval before
/// the leader even reads the ack off the socket. Sets `failed` (with
/// `status` written first) when the stream should end: the follower
/// closed the connection, broke framing, or acked from a HIGHER epoch
/// (someone was promoted past us).
void ReadAcks(net::Socket* socket, const StreamContext& ctx,
              const std::string& follower_id,
              const std::atomic<bool>* stop, Status* status,
              std::atomic<bool>* failed) {
  const auto fail = [&](Status why) {
    *status = std::move(why);
    failed->store(true, std::memory_order_release);
  };
  net::FrameReader reader;
  char buf[kRecvChunk];
  while (!stop->load(std::memory_order_acquire)) {
    const Result<bool> readable = socket->WaitReadable(kTailWaitSeconds);
    if (!readable.ok()) return fail(readable.status());
    if (!*readable) continue;
    const Result<size_t> got = socket->Recv(buf, sizeof(buf));
    if (!got.ok()) return fail(got.status());
    if (*got == 0) return fail(Status::OK());  // orderly EOF: hung up
    reader.Feed(std::string_view(buf, *got));
    for (;;) {
      net::Frame frame;
      std::string parse_error;
      const net::FrameReader::Next next = reader.Poll(&frame, &parse_error);
      if (next == net::FrameReader::Next::kNeedMore) break;
      if (next == net::FrameReader::Next::kBad) {
        return fail(Status::ParseError("follower stream: " + parse_error));
      }
      if (frame.type != net::MsgType::kReplAck) {
        return fail(Status::InvalidArgument(
            "unexpected frame type from subscribed follower"));
      }
      const uint64_t leader_epoch = ctx.wal->repl_epoch();
      if (frame.request_id > leader_epoch) {
        // The follower has witnessed a newer epoch than ours: we are a
        // deposed leader that has not heard yet. Stop streaming.
        XIA_OBS_COUNT("xia.repl.fenced_acks", 1);
        return fail(Status::Fenced(
            "follower acked from epoch " + std::to_string(frame.request_id) +
            ", ours is " + std::to_string(leader_epoch)));
      }
      const Result<net::ReplAckPayload> ack =
          net::DecodeReplAckPayload(frame.payload);
      if (!ack.ok()) return fail(ack.status());
      ctx.hub->OnAck(follower_id, ack->acked_lsn);
      XIA_OBS_COUNT("xia.repl.acks_received", 1);
    }
  }
}

/// Reads the current checkpoint image (under the shared db lock, so a
/// concurrent checkpoint cannot swap files mid-read) and ships it,
/// stamped with the leader's epoch.
Status SendSnapshot(net::Socket* socket, const StreamContext& ctx,
                    uint64_t leader_epoch, uint64_t* resume_lsn) {
  wal::CheckpointImage image;
  {
    std::shared_lock<std::shared_mutex> lock(*ctx.db_mu);
    XIA_ASSIGN_OR_RETURN(image, ctx.wal->ReadCheckpointImage());
  }
  XIA_FAULT_INJECT(fault::points::kReplSnapshotXfer);
  net::ReplSnapshotPayload payload;
  payload.checkpoint_lsn = image.checkpoint_lsn;
  payload.has_snapshot = image.has_snapshot;
  payload.has_catalog = image.has_catalog;
  payload.snapshot_bytes = std::move(image.snapshot_bytes);
  payload.catalog_bytes = std::move(image.catalog_bytes);
  payload.repl_epoch = image.repl_epoch;
  payload.epoch_start_lsn = image.epoch_start_lsn;
  const std::string encoded = net::EncodeReplSnapshotPayload(payload);
  if (encoded.size() > net::kMaxPayloadBytes) {
    return Status::ResourceExhausted(
        "checkpoint image exceeds the wire frame limit (" +
        std::to_string(encoded.size()) + " bytes)");
  }
  XIA_RETURN_IF_ERROR(socket->SendAll(net::EncodeFrame(
      net::MsgType::kReplSnapshot, leader_epoch, encoded)));
  XIA_OBS_COUNT("xia.repl.snapshots_sent", 1);
  *resume_lsn = payload.checkpoint_lsn + 1;
  return Status::OK();
}

}  // namespace

Status RunReplStream(net::Socket* socket,
                     const net::ReplSubscribeRequest& subscribe,
                     const StreamContext& ctx) {
  // Fence a subscriber from the future: if the follower has witnessed a
  // newer epoch than ours, this node was deposed and must not stream.
  // The follower gets a kError(kFenced) frame so it knows why.
  const uint64_t leader_epoch = ctx.wal->repl_epoch();
  if (subscribe.epoch > leader_epoch) {
    net::ErrorReply fenced;
    fenced.code = StatusCode::kFenced;
    fenced.message = "subscriber witnessed epoch " +
                     std::to_string(subscribe.epoch) +
                     ", this leader is at " + std::to_string(leader_epoch);
    (void)socket->SendAll(net::EncodeFrame(
        net::MsgType::kError, 0, net::EncodeErrorReply(fenced)));
    XIA_OBS_COUNT("xia.repl.fenced_subscribes", 1);
    return Status::Fenced(fenced.message);
  }

  ctx.hub->OnSubscribe(subscribe.follower_id, subscribe.start_lsn);
  wal::TailCursor cursor;
  cursor.next_lsn = std::max<uint64_t>(subscribe.start_lsn, 1);

  // The inbound half runs concurrently: this thread owns all reads from
  // the socket (this one owns all writes), posts acks straight into the
  // hub, and flags terminal conditions for the send loop to pick up.
  std::atomic<bool> ack_stop{false};
  std::atomic<bool> ack_failed{false};
  Status ack_status;  // written (once) before ack_failed is set
  std::thread ack_reader(ReadAcks, socket, ctx, subscribe.follower_id,
                         &ack_stop, &ack_status, &ack_failed);

  // Announce our epoch and its barrier LSN first, so a rejoining
  // deposed leader can locate the divergence point before any frame.
  net::ReplHelloPayload hello;
  hello.leader_epoch = leader_epoch;
  hello.epoch_start_lsn = ctx.wal->epoch_start_lsn();
  Status result = socket->SendAll(
      net::EncodeFrame(net::MsgType::kReplHello, leader_epoch,
                       net::EncodeReplHelloPayload(hello)));

  while (result.ok() && !ctx.stopping->load(std::memory_order_acquire)) {
    if (ctx.demoted != nullptr &&
        ctx.demoted->load(std::memory_order_acquire)) {
      // Deposed mid-stream: stop immediately rather than ship frames
      // that the new epoch will fence anyway.
      result = Status::Fenced("leader demoted to follower");
      break;
    }
    if (ack_failed.load(std::memory_order_acquire)) {
      result = ack_status;  // OK when the follower simply hung up
      break;
    }
    // Re-read per batch: a self-promotion bumps the epoch mid-stream
    // and the frames after the barrier must carry the new stamp.
    const uint64_t cur_epoch = ctx.wal->repl_epoch();

    Result<wal::TailBatch> batch =
        ctx.wal->ReadTail(&cursor, kBatchRecords, kTailWaitSeconds);
    if (!batch.ok()) {
      result = batch.status();
      break;
    }
    if (batch->need_checkpoint) {
      result = SendSnapshot(socket, ctx, cur_epoch, &cursor.next_lsn);
      if (!result.ok()) break;
      continue;
    }
    bool send_failed = false;
    for (const std::string& payload : batch->payloads) {
      const Status injected = [] {
        XIA_FAULT_INJECT(fault::points::kReplSend);
        return Status::OK();
      }();
      if (injected.ok()) {
        result = socket->SendAll(net::EncodeFrame(
            net::MsgType::kReplFrame, cur_epoch, payload));
      } else {
        result = injected;
      }
      if (!result.ok()) {
        send_failed = true;
        break;
      }
      if (ctx.test_hook) ctx.test_hook("repl.stream.mid_send");
      XIA_OBS_COUNT("xia.repl.frames_sent", 1);
    }
    if (send_failed) break;
  }
  ack_stop.store(true, std::memory_order_release);
  ack_reader.join();
  ctx.hub->OnDisconnect(subscribe.follower_id);
  return result;
}

}  // namespace xia::repl
