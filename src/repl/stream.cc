#include "repl/stream.h"

#include <algorithm>
#include <string>

#include "fault/fault.h"
#include "obs/metrics.h"

namespace xia::repl {

namespace {

constexpr size_t kBatchRecords = 256;
/// How long one ReadTail blocks; bounds stop-latency when idle.
constexpr double kTailWaitSeconds = 0.05;
constexpr size_t kRecvChunk = 4 * 1024;

/// Drains any follower->leader bytes already available (acks). Returns
/// false when the follower closed the connection or broke framing — the
/// stream should end.
bool DrainAcks(net::Socket* socket, net::FrameReader* reader,
               const std::string& follower_id, ReplHub* hub,
               Status* error) {
  char buf[kRecvChunk];
  for (;;) {
    const Result<bool> readable = socket->WaitReadable(0);
    if (!readable.ok()) {
      *error = readable.status();
      return false;
    }
    if (!*readable) return true;
    const Result<size_t> got = socket->Recv(buf, sizeof(buf));
    if (!got.ok()) {
      *error = got.status();
      return false;
    }
    if (*got == 0) return false;  // orderly EOF: follower went away
    reader->Feed(std::string_view(buf, *got));
    for (;;) {
      net::Frame frame;
      std::string parse_error;
      const net::FrameReader::Next next = reader->Poll(&frame, &parse_error);
      if (next == net::FrameReader::Next::kNeedMore) break;
      if (next == net::FrameReader::Next::kBad) {
        *error = Status::ParseError("follower stream: " + parse_error);
        return false;
      }
      if (frame.type != net::MsgType::kReplAck) {
        *error = Status::InvalidArgument(
            "unexpected frame type from subscribed follower");
        return false;
      }
      const Result<net::ReplAckPayload> ack =
          net::DecodeReplAckPayload(frame.payload);
      if (!ack.ok()) {
        *error = ack.status();
        return false;
      }
      hub->OnAck(follower_id, ack->acked_lsn);
      XIA_OBS_COUNT("xia.repl.acks_received", 1);
    }
  }
}

/// Reads the current checkpoint image (under the shared db lock, so a
/// concurrent checkpoint cannot swap files mid-read) and ships it.
Status SendSnapshot(net::Socket* socket, const StreamContext& ctx,
                    uint64_t* resume_lsn) {
  wal::CheckpointImage image;
  {
    std::shared_lock<std::shared_mutex> lock(*ctx.db_mu);
    XIA_ASSIGN_OR_RETURN(image, ctx.wal->ReadCheckpointImage());
  }
  XIA_FAULT_INJECT(fault::points::kReplSnapshotXfer);
  net::ReplSnapshotPayload payload;
  payload.checkpoint_lsn = image.checkpoint_lsn;
  payload.has_snapshot = image.has_snapshot;
  payload.has_catalog = image.has_catalog;
  payload.snapshot_bytes = std::move(image.snapshot_bytes);
  payload.catalog_bytes = std::move(image.catalog_bytes);
  const std::string encoded = net::EncodeReplSnapshotPayload(payload);
  if (encoded.size() > net::kMaxPayloadBytes) {
    return Status::ResourceExhausted(
        "checkpoint image exceeds the wire frame limit (" +
        std::to_string(encoded.size()) + " bytes)");
  }
  XIA_RETURN_IF_ERROR(socket->SendAll(
      net::EncodeFrame(net::MsgType::kReplSnapshot, 0, encoded)));
  XIA_OBS_COUNT("xia.repl.snapshots_sent", 1);
  *resume_lsn = payload.checkpoint_lsn + 1;
  return Status::OK();
}

}  // namespace

Status RunReplStream(net::Socket* socket,
                     const net::ReplSubscribeRequest& subscribe,
                     const StreamContext& ctx) {
  ctx.hub->OnSubscribe(subscribe.follower_id, subscribe.start_lsn);
  net::FrameReader acks;
  wal::TailCursor cursor;
  cursor.next_lsn = std::max<uint64_t>(subscribe.start_lsn, 1);

  Status result = Status::OK();
  while (!ctx.stopping->load(std::memory_order_acquire)) {
    Status ack_error = Status::OK();
    if (!DrainAcks(socket, &acks, subscribe.follower_id, ctx.hub,
                   &ack_error)) {
      result = ack_error;  // OK when the follower simply hung up
      break;
    }

    Result<wal::TailBatch> batch =
        ctx.wal->ReadTail(&cursor, kBatchRecords, kTailWaitSeconds);
    if (!batch.ok()) {
      result = batch.status();
      break;
    }
    if (batch->need_checkpoint) {
      result = SendSnapshot(socket, ctx, &cursor.next_lsn);
      if (!result.ok()) break;
      continue;
    }
    bool send_failed = false;
    for (const std::string& payload : batch->payloads) {
      const Status injected = [] {
        XIA_FAULT_INJECT(fault::points::kReplSend);
        return Status::OK();
      }();
      if (injected.ok()) {
        result = socket->SendAll(
            net::EncodeFrame(net::MsgType::kReplFrame, 0, payload));
      } else {
        result = injected;
      }
      if (!result.ok()) {
        send_failed = true;
        break;
      }
      XIA_OBS_COUNT("xia.repl.frames_sent", 1);
    }
    if (send_failed) break;
  }
  ctx.hub->OnDisconnect(subscribe.follower_id);
  return result;
}

}  // namespace xia::repl
