#include "tpox/xmark.h"

#include "engine/query_parser.h"
#include "util/string_util.h"

namespace xia::tpox {

namespace {

const std::vector<std::string>& Regions() {
  static const std::vector<std::string> kRegions = {
      "africa", "asia", "australia", "europe", "namerica", "samerica"};
  return kRegions;
}

const std::vector<std::string>& Categories() {
  static const std::vector<std::string> kCategories = [] {
    std::vector<std::string> v;
    for (int i = 0; i < 25; ++i) v.push_back("category" + std::to_string(i));
    return v;
  }();
  return kCategories;
}

}  // namespace

xml::Document GenerateXmarkItem(size_t id, Random* rng) {
  xml::Document doc;
  doc.ReserveNodes(32);
  const xml::NodeIndex root = doc.AddRoot("item");
  doc.AddAttribute(root, "id", StringPrintf("item%zu", id));
  const std::string& region = rng->Pick(Regions());
  doc.AddElement(root, "location", region);
  doc.AddElement(root, "quantity",
                 std::to_string(1 + rng->Uniform(10)));
  doc.AddElement(root, "name", "Item " + rng->NextString(8));
  doc.AddElement(root, "payment",
                 rng->Bernoulli(0.5) ? "Creditcard" : "Cash");
  const xml::NodeIndex description = doc.AddElement(root, "description");
  const xml::NodeIndex text = doc.AddElement(description, "text");
  doc.SetValue(text, rng->NextString(40));
  if (rng->Bernoulli(0.3)) {
    const xml::NodeIndex parlist = doc.AddElement(description, "parlist");
    const size_t n = 1 + rng->Uniform(3);
    for (size_t i = 0; i < n; ++i) {
      doc.AddElement(parlist, "listitem", rng->NextString(20));
    }
  }
  const size_t n_cats = 1 + rng->Uniform(3);
  for (size_t i = 0; i < n_cats; ++i) {
    const xml::NodeIndex incat = doc.AddElement(root, "incategory");
    doc.AddAttribute(incat, "category", rng->Pick(Categories()));
  }
  const xml::NodeIndex mailbox = doc.AddElement(root, "mailbox");
  if (rng->Bernoulli(0.4)) {
    const xml::NodeIndex mail = doc.AddElement(mailbox, "mail");
    doc.AddElement(mail, "from", rng->NextString(10));
    doc.AddElement(mail, "date",
                   StringPrintf("2001-%02d-%02d",
                                static_cast<int>(1 + rng->Uniform(12)),
                                static_cast<int>(1 + rng->Uniform(28))));
  }
  return doc;
}

xml::Document GenerateXmarkAuction(size_t id, size_t item_count,
                                   size_t person_count, Random* rng) {
  xml::Document doc;
  doc.ReserveNodes(32);
  const xml::NodeIndex root = doc.AddRoot("open_auction");
  doc.AddAttribute(root, "id", StringPrintf("auction%zu", id));
  const double initial = rng->UniformDouble(1.0, 200.0);
  doc.AddElement(root, "initial", StringPrintf("%.2f", initial));
  doc.AddElement(root, "reserve",
                 StringPrintf("%.2f", initial * rng->UniformDouble(1.1, 2.0)));
  double current = initial;
  const size_t n_bids = rng->Uniform(6);
  for (size_t b = 0; b < n_bids; ++b) {
    const xml::NodeIndex bidder = doc.AddElement(root, "bidder");
    doc.AddElement(bidder, "date",
                   StringPrintf("2001-%02d-%02d",
                                static_cast<int>(1 + rng->Uniform(12)),
                                static_cast<int>(1 + rng->Uniform(28))));
    const double increase = rng->UniformDouble(1.0, 25.0);
    current += increase;
    doc.AddElement(bidder, "increase", StringPrintf("%.2f", increase));
    const xml::NodeIndex ref = doc.AddElement(bidder, "personref");
    doc.AddAttribute(
        ref, "person",
        StringPrintf("person%zu",
                     person_count == 0 ? 0 : rng->Uniform(person_count)));
  }
  doc.AddElement(root, "current", StringPrintf("%.2f", current));
  const xml::NodeIndex itemref = doc.AddElement(root, "itemref");
  doc.AddAttribute(
      itemref, "item",
      StringPrintf("item%zu",
                   item_count == 0 ? 0 : rng->Uniform(item_count)));
  const xml::NodeIndex seller = doc.AddElement(root, "seller");
  doc.AddAttribute(
      seller, "person",
      StringPrintf("person%zu",
                   person_count == 0 ? 0 : rng->Uniform(person_count)));
  doc.AddElement(root, "quantity", std::to_string(1 + rng->Uniform(5)));
  doc.AddElement(root, "type",
                 rng->Bernoulli(0.7) ? "Regular" : "Featured");
  return doc;
}

xml::Document GenerateXmarkPerson(size_t id, Random* rng) {
  xml::Document doc;
  doc.ReserveNodes(24);
  const xml::NodeIndex root = doc.AddRoot("person");
  doc.AddAttribute(root, "id", StringPrintf("person%zu", id));
  doc.AddElement(root, "name",
                 "P" + rng->NextString(6) + " " + rng->NextString(8));
  doc.AddElement(root, "emailaddress",
                 "mailto:" + rng->NextString(8) + "@example.com");
  if (rng->Bernoulli(0.6)) {
    doc.AddElement(root, "phone",
                   StringPrintf("+%llu", static_cast<unsigned long long>(
                                             rng->Uniform(999999999))));
  }
  if (rng->Bernoulli(0.7)) {
    const xml::NodeIndex address = doc.AddElement(root, "address");
    doc.AddElement(address, "street", rng->NextString(12));
    doc.AddElement(address, "city", "City" + std::to_string(rng->Uniform(50)));
    doc.AddElement(address, "country", rng->Pick(Regions()));
  }
  const xml::NodeIndex profile = doc.AddElement(root, "profile");
  doc.AddAttribute(profile, "income",
                   StringPrintf("%.2f", rng->UniformDouble(10000, 200000)));
  doc.AddElement(profile, "education",
                 rng->Bernoulli(0.5) ? "Graduate" : "HighSchool");
  const xml::NodeIndex interests = doc.AddElement(profile, "interest");
  doc.AddAttribute(interests, "category", rng->Pick(Categories()));
  if (rng->Bernoulli(0.5)) {
    const xml::NodeIndex watches = doc.AddElement(root, "watches");
    const xml::NodeIndex watch = doc.AddElement(watches, "watch");
    doc.AddAttribute(watch, "open_auction",
                     StringPrintf("auction%llu",
                                  static_cast<unsigned long long>(
                                      rng->Uniform(500))));
  }
  return doc;
}

Status BuildXmarkDatabase(const XmarkScale& scale,
                          storage::DocumentStore* store,
                          storage::StatisticsCatalog* statistics) {
  Random rng(scale.seed);
  XIA_ASSIGN_OR_RETURN(storage::Collection * items,
                       store->CreateCollection(kXmarkItemCollection));
  for (size_t i = 0; i < scale.items; ++i) {
    items->Add(GenerateXmarkItem(i, &rng));
  }
  XIA_ASSIGN_OR_RETURN(storage::Collection * auctions,
                       store->CreateCollection(kXmarkAuctionCollection));
  for (size_t i = 0; i < scale.auctions; ++i) {
    auctions->Add(
        GenerateXmarkAuction(i, scale.items, scale.persons, &rng));
  }
  XIA_ASSIGN_OR_RETURN(storage::Collection * persons,
                       store->CreateCollection(kXmarkPersonCollection));
  for (size_t i = 0; i < scale.persons; ++i) {
    persons->Add(GenerateXmarkPerson(i, &rng));
  }
  statistics->RunStats(*items);
  statistics->RunStats(*auctions);
  statistics->RunStats(*persons);
  return Status::OK();
}

Result<engine::Workload> XmarkQueries() {
  const std::pair<const char*, std::string> kQueries[] = {
      {"XMark-Q1 item_by_id",
       "for $i in ITEM('XITEM')/item where $i/@id = \"item17\" return $i"},
      {"XMark-Q2 items_in_region",
       "for $i in ITEM('XITEM')/item where $i/location = \"europe\" "
       "return $i/name"},
      {"XMark-Q3 items_in_category",
       "for $i in ITEM('XITEM')/item/incategory[@category = \"category3\"] "
       "return $i"},
      {"XMark-Q4 hot_auctions",
       "for $a in AUCTION('XAUCTION')/open_auction "
       "where $a/current > 250 return $a/itemref/@item"},
      {"XMark-Q5 big_increases",
       "for $a in AUCTION('XAUCTION')/open_auction/bidder[increase > 24] "
       "return $a"},
      {"XMark-Q6 featured",
       "for $a in AUCTION('XAUCTION')/open_auction "
       "where $a/type = \"Featured\" and $a/initial < 20 return $a/@id"},
      {"XMark-Q7 person_by_id",
       "for $p in PERSON('XPERSON')/person where $p/@id = \"person11\" "
       "return $p/name"},
      {"XMark-Q8 high_income",
       "for $p in PERSON('XPERSON')/person[profile/@income >= 195000] "
       "return $p/emailaddress"},
  };
  engine::Workload workload;
  for (const auto& [label, text] : kQueries) {
    XIA_ASSIGN_OR_RETURN(engine::Statement stmt,
                         engine::ParseStatement(text, 1.0, label));
    workload.push_back(std::move(stmt));
  }
  return workload;
}

}  // namespace xia::tpox
