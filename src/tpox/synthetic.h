// Synthetic workload generation (§VII-C): random XPath queries over paths
// that occur in the data, with value predicates drawn from observed value
// ranges. Optionally injects wildcard steps and descendant axes to
// diversify the patterns (the paper's generalization experiments rely on
// workloads whose members share partial structure).

#ifndef XIA_TPOX_SYNTHETIC_H_
#define XIA_TPOX_SYNTHETIC_H_

#include <string>
#include <vector>

#include "engine/query.h"
#include "storage/statistics.h"
#include "util/random.h"
#include "util/status.h"

namespace xia::tpox {

/// Knobs for the synthetic generator.
struct SyntheticOptions {
  /// Probability of replacing a non-final step's name test with '*'.
  double wildcard_probability = 0.15;
  /// Probability of turning a non-first step's axis into '//'.
  double descendant_probability = 0.10;
  /// Probability of an equality (vs. range) predicate.
  double equality_probability = 0.6;
  /// Minimum node count for a path to be eligible as a query target.
  uint64_t min_path_count = 2;
};

/// Generates `count` random single-predicate queries over the collections
/// named in `collections`, using their collected statistics as the path and
/// value source.
Result<engine::Workload> GenerateSyntheticWorkload(
    const storage::StatisticsCatalog& statistics,
    const std::vector<std::string>& collections, size_t count, Random* rng,
    const SyntheticOptions& options = {});

}  // namespace xia::tpox

#endif  // XIA_TPOX_SYNTHETIC_H_
