#include "tpox/tpox_workload.h"

#include "engine/query_parser.h"
#include "tpox/tpox_data.h"
#include "util/string_util.h"
#include "xml/serializer.h"

namespace xia::tpox {

Result<engine::Workload> TpoxQueries() {
  // Each entry: {label, text}.
  const std::pair<const char*, std::string> kQueries[] = {
      {"TPoX-Q1 get_security",
       "for $s in SECURITY('SDOC')/Security "
       "where $s/Symbol = \"SYM000017\" return $s"},
      {"TPoX-Q2 get_security_price",
       "for $s in SECURITY('SDOC')/Security "
       "where $s/Symbol = \"SYM000042\" return $s/Price/LastTrade"},
      {"TPoX-Q3 search_securities",
       "for $s in SECURITY('SDOC')/Security[Yield > 4.5] "
       "where $s/SecInfo/*/Sector = \"Energy\" "
       "return <Security>{$s/Name}</Security>"},
      {"TPoX-Q4 stocks_by_pe",
       "for $s in SECURITY('SDOC')/Security "
       "where $s/PE > 45 and $s/SecurityType = \"Stock\" "
       "return $s/Symbol"},
      {"TPoX-Q5 expensive_securities",
       "for $s in SECURITY('SDOC')/Security[Price/LastTrade > 190] "
       "return $s/Symbol"},
      {"TPoX-Q6 get_order",
       "for $o in ORDER('ODOC')/FIXML/Order "
       "where $o/@ID = \"100123\" return $o"},
      {"TPoX-Q7 orders_by_symbol",
       "for $o in ORDER('ODOC')/FIXML/Order "
       "where $o/Instrmt/Sym = \"SYM000003\" return $o/@ID"},
      {"TPoX-Q8 big_orders",
       "for $o in ORDER('ODOC')/FIXML/Order[OrdQty/@Qty >= 4900] "
       "return $o/Instrmt/Sym"},
      {"TPoX-Q9 get_customer",
       "for $c in CUSTACC('CADOC')/Customer "
       "where $c/Id = 1042 return $c/Name/ShortName"},
      {"TPoX-Q10 rich_accounts",
       "for $c in CUSTACC('CADOC')/Customer "
       "where $c/Accounts/Account/Balance/OnlineActualBal/Amount > 990000 "
       "return $c/Id"},
      {"TPoX-Q11 premium_by_nationality",
       "for $c in CUSTACC('CADOC')/Customer[Tier = \"Premium\"] "
       "where $c/Nationality = \"Japan\" return $c/Id"},
  };

  engine::Workload workload;
  for (const auto& [label, text] : kQueries) {
    XIA_ASSIGN_OR_RETURN(engine::Statement stmt,
                         engine::ParseStatement(text, 1.0, label));
    workload.push_back(std::move(stmt));
  }
  return workload;
}

Result<engine::Workload> TpoxUpdates(size_t inserts, size_t deletes,
                                     size_t existing_orders, Random* rng) {
  engine::Workload workload;
  for (size_t i = 0; i < inserts; ++i) {
    const size_t id = 900000 + i;
    xml::Document doc = GenerateOrderDocument(id, 1000, rng);
    engine::Statement stmt;
    engine::InsertSpec ins;
    ins.collection = kOrderCollection;
    ins.document_text = xml::Serialize(doc);
    stmt.body = std::move(ins);
    stmt.label = StringPrintf("TPoX-U-ins%zu", i);
    stmt.text = "insert into ODOC <FIXML>...</FIXML>";
    workload.push_back(std::move(stmt));
  }
  for (size_t i = 0; i < deletes; ++i) {
    const size_t victim =
        existing_orders == 0 ? 0 : rng->Uniform(existing_orders);
    const std::string text = StringPrintf(
        "delete from ODOC where /FIXML/Order[@ID = \"%s\"]",
        TpoxDomains::OrderId(victim).c_str());
    XIA_ASSIGN_OR_RETURN(
        engine::Statement stmt,
        engine::ParseStatement(text, 1.0,
                               StringPrintf("TPoX-U-del%zu", i)));
    workload.push_back(std::move(stmt));
  }
  return workload;
}

Result<engine::Workload> TpoxTransactionMix(size_t per_kind,
                                            size_t security_count,
                                            size_t order_count,
                                            size_t customer_count,
                                            Random* rng) {
  engine::Workload workload;
  // New orders (TPoX "place order").
  XIA_ASSIGN_OR_RETURN(engine::Workload inserts,
                       TpoxUpdates(per_kind, 0, order_count, rng));
  for (auto& stmt : inserts) workload.push_back(std::move(stmt));

  // Order price updates (TPoX "update order").
  for (size_t i = 0; i < per_kind; ++i) {
    const size_t order = order_count == 0 ? 0 : rng->Uniform(order_count);
    const std::string text = StringPrintf(
        "update ODOC set /FIXML/Order/Px = %.2f "
        "where /FIXML/Order[@ID = \"%s\"]",
        rng->UniformDouble(5.0, 200.0), TpoxDomains::OrderId(order).c_str());
    XIA_ASSIGN_OR_RETURN(
        engine::Statement stmt,
        engine::ParseStatement(text, 1.0,
                               StringPrintf("TPoX-U-px%zu", i)));
    workload.push_back(std::move(stmt));
  }

  // Security last-trade updates (TPoX "update security price"): touch the
  // whole price subtree of one security.
  for (size_t i = 0; i < per_kind; ++i) {
    const size_t sec =
        security_count == 0 ? 0 : rng->Uniform(security_count);
    const std::string text = StringPrintf(
        "update SDOC set /Security/Price/LastTrade = %.2f "
        "where /Security[Symbol = \"%s\"]",
        rng->UniformDouble(5.0, 200.0), TpoxDomains::Symbol(sec).c_str());
    XIA_ASSIGN_OR_RETURN(
        engine::Statement stmt,
        engine::ParseStatement(text, 1.0,
                               StringPrintf("TPoX-U-price%zu", i)));
    workload.push_back(std::move(stmt));
  }

  // Customer tier promotions.
  for (size_t i = 0; i < per_kind; ++i) {
    const size_t cust =
        customer_count == 0 ? 0 : rng->Uniform(customer_count);
    const std::string text = StringPrintf(
        "update CADOC set /Customer/Tier = \"%s\" "
        "where /Customer[Id = %lld]",
        rng->Pick(TpoxDomains::Tiers()).c_str(),
        static_cast<long long>(TpoxDomains::CustomerId(cust)));
    XIA_ASSIGN_OR_RETURN(
        engine::Statement stmt,
        engine::ParseStatement(text, 1.0,
                               StringPrintf("TPoX-U-tier%zu", i)));
    workload.push_back(std::move(stmt));
  }

  // Order cancellations (deletes).
  XIA_ASSIGN_OR_RETURN(engine::Workload deletes,
                       TpoxUpdates(0, per_kind, order_count, rng));
  for (auto& stmt : deletes) workload.push_back(std::move(stmt));
  return workload;
}

}  // namespace xia::tpox
