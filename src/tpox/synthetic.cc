#include "tpox/synthetic.h"

#include <algorithm>

#include "util/string_util.h"

namespace xia::tpox {

namespace {

// Candidate path for query generation: a concrete data path with values.
struct EligiblePath {
  std::string collection;
  const storage::PathStats* stats;
};

}  // namespace

Result<engine::Workload> GenerateSyntheticWorkload(
    const storage::StatisticsCatalog& statistics,
    const std::vector<std::string>& collections, size_t count, Random* rng,
    const SyntheticOptions& options) {
  std::vector<EligiblePath> eligible;
  for (const std::string& collection : collections) {
    XIA_ASSIGN_OR_RETURN(const storage::CollectionStatistics* cs,
                         statistics.Get(collection));
    for (const auto& [path_string, stats] : cs->paths()) {
      if (stats.valued_count < options.min_path_count) continue;
      if (stats.labels.size() < 2) continue;  // want a navigation, not root
      eligible.push_back({collection, &stats});
    }
  }
  if (eligible.empty()) {
    return Status::FailedPrecondition(
        "no eligible data paths; run statistics collection first");
  }

  engine::Workload workload;
  for (size_t q = 0; q < count; ++q) {
    const EligiblePath& target = eligible[rng->Uniform(eligible.size())];
    const storage::PathStats& ps = *target.stats;

    // Build the binding path over the concrete labels, with optional
    // wildcard / descendant mutations that keep the path matching the
    // same data (widening only).
    xpath::PathQuery binding;
    for (size_t i = 0; i < ps.labels.size(); ++i) {
      xpath::QueryStep qs;
      xpath::Axis axis = xpath::Axis::kChild;
      if (i > 0 && rng->Bernoulli(options.descendant_probability)) {
        axis = xpath::Axis::kDescendant;
      }
      std::string name = ps.labels[i];
      const bool final_step = (i + 1 == ps.labels.size());
      if (!final_step && i > 0 &&
          rng->Bernoulli(options.wildcard_probability)) {
        name = "*";
        // A wildcarded step keeps the child axis; the pattern still matches
        // the original path.
      }
      qs.step = xpath::Step(axis, name);
      binding.Append(std::move(qs));
    }

    // Attach one comparison predicate on the final step, over its own
    // value ('.').
    xpath::Predicate pred;
    const bool numeric = ps.numeric_count > 0 &&
                         ps.numeric_count >= ps.valued_count / 2;
    if (rng->Bernoulli(options.equality_probability)) {
      pred.op = xpath::CompareOp::kEq;
      if (numeric) {
        // min and max are values that certainly occur.
        pred.literal = xpath::Literal::Number(
            rng->Bernoulli(0.5) ? ps.min_numeric : ps.max_numeric);
      } else {
        pred.literal = xpath::Literal::String(
            rng->Bernoulli(0.5) ? ps.min_string : ps.max_string);
      }
    } else {
      const bool greater = rng->Bernoulli(0.5);
      pred.op = greater ? xpath::CompareOp::kGt : xpath::CompareOp::kLt;
      if (numeric) {
        pred.literal = xpath::Literal::Number(rng->UniformDouble(
            ps.min_numeric, std::max(ps.min_numeric, ps.max_numeric)));
      } else {
        pred.literal = xpath::Literal::String(greater ? ps.min_string
                                                      : ps.max_string);
      }
    }
    binding.steps().back().predicates.push_back(std::move(pred));

    engine::Statement stmt;
    engine::QuerySpec spec;
    spec.collection = target.collection;
    spec.variable = "x";
    spec.binding = std::move(binding);
    stmt.label = StringPrintf("SYN-%zu", q);
    stmt.text = StringPrintf("for $x in collection('%s')%s return $x",
                             target.collection.c_str(),
                             spec.binding.ToString().c_str());
    stmt.body = std::move(spec);
    workload.push_back(std::move(stmt));
  }
  return workload;
}

}  // namespace xia::tpox
