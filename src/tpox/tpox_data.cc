#include "tpox/tpox_data.h"

#include <cmath>

#include "util/string_util.h"

namespace xia::tpox {

const std::vector<std::string>& TpoxDomains::Sectors() {
  static const std::vector<std::string> kSectors = {
      "Energy",       "Materials",  "Industrials", "ConsumerDiscretionary",
      "ConsumerStaples", "HealthCare", "Financials", "InformationTechnology",
      "Telecommunications", "Utilities", "RealEstate", "Aerospace"};
  return kSectors;
}

const std::vector<std::string>& TpoxDomains::Industries() {
  static const std::vector<std::string> kIndustries = [] {
    std::vector<std::string> v;
    for (const std::string& sector : Sectors()) {
      for (int i = 1; i <= 3; ++i) {
        v.push_back(sector + "Ind" + std::to_string(i));
      }
    }
    return v;
  }();
  return kIndustries;
}

const std::vector<std::string>& TpoxDomains::SecurityTypes() {
  static const std::vector<std::string> kTypes = {"Stock", "Fund", "Bond"};
  return kTypes;
}

const std::vector<std::string>& TpoxDomains::Nationalities() {
  static const std::vector<std::string> kNationalities = {
      "USA",    "Canada",  "Mexico",  "Brazil",   "UK",     "France",
      "Germany", "Italy",  "Spain",   "Japan",    "China",  "India",
      "Korea",   "Sweden", "Norway",  "Australia", "Egypt", "SouthAfrica",
      "Kenya",   "Chile"};
  return kNationalities;
}

const std::vector<std::string>& TpoxDomains::Tiers() {
  static const std::vector<std::string> kTiers = {"Premium", "Gold", "Silver",
                                                  "Standard"};
  return kTiers;
}

const std::vector<std::string>& TpoxDomains::Currencies() {
  static const std::vector<std::string> kCurrencies = {"USD", "EUR", "GBP",
                                                       "JPY", "CAD"};
  return kCurrencies;
}

std::string TpoxDomains::Symbol(size_t id) {
  return StringPrintf("SYM%06zu", id);
}

std::string TpoxDomains::OrderId(size_t id) {
  return StringPrintf("%zu", 100000 + id);
}

int64_t TpoxDomains::CustomerId(size_t id) {
  return static_cast<int64_t>(1000 + id);
}

xml::Document GenerateSecurityDocument(size_t id, Random* rng) {
  xml::Document doc;
  doc.ReserveNodes(28);
  const xml::NodeIndex root = doc.AddRoot("Security");
  doc.AddElement(root, "Symbol", TpoxDomains::Symbol(id));
  doc.AddElement(root, "Name",
                 StringPrintf("Company%zu %s Holdings", id,
                              rng->NextString(4).c_str()));
  const std::string& type =
      TpoxDomains::SecurityTypes()[rng->Zipf(3, 1.1)];
  doc.AddElement(root, "SecurityType", type);

  // SecInfo/<TypeInformation>/Sector|Industry — the wildcard level the
  // paper's running example (/Security/SecInfo/*/Sector) depends on.
  const xml::NodeIndex info = doc.AddElement(root, "SecInfo");
  const xml::NodeIndex type_info =
      doc.AddElement(info, type + "Information");
  const size_t sector_idx = rng->Uniform(TpoxDomains::Sectors().size());
  doc.AddElement(type_info, "Sector", TpoxDomains::Sectors()[sector_idx]);
  doc.AddElement(type_info, "Industry",
                 TpoxDomains::Sectors()[sector_idx] + "Ind" +
                     std::to_string(1 + rng->Uniform(3)));
  if (rng->Bernoulli(0.5)) {
    doc.AddElement(type_info, "SubIndustry",
                   "Sub" + rng->NextString(5));
  }

  const double last = rng->UniformDouble(5.0, 200.0);
  const xml::NodeIndex price = doc.AddElement(root, "Price");
  doc.AddElement(price, "LastTrade", StringPrintf("%.2f", last));
  doc.AddElement(price, "Open", StringPrintf("%.2f", last * rng->UniformDouble(0.95, 1.05)));
  doc.AddElement(price, "Close", StringPrintf("%.2f", last * rng->UniformDouble(0.95, 1.05)));
  doc.AddElement(price, "High", StringPrintf("%.2f", last * rng->UniformDouble(1.0, 1.1)));
  doc.AddElement(price, "Low", StringPrintf("%.2f", last * rng->UniformDouble(0.9, 1.0)));

  doc.AddElement(root, "Yield",
                 StringPrintf("%.1f", rng->UniformDouble(0.0, 10.0)));
  doc.AddElement(root, "PE",
                 StringPrintf("%.1f", rng->UniformDouble(2.0, 60.0)));
  doc.AddElement(root, "EPS",
                 StringPrintf("%.2f", rng->UniformDouble(-5.0, 20.0)));
  // Trading volume is heavy-tailed (a few securities dominate); the
  // exponential tail is what makes histogram-based range selectivity
  // visibly better than the uniform assumption.
  const double volume =
      1000.0 + -std::log(1.0 - rng->NextDouble()) * 400000.0;
  doc.AddElement(root, "Volume",
                 StringPrintf("%.0f", volume));
  doc.AddElement(root, "Currency", rng->Pick(TpoxDomains::Currencies()));
  doc.AddElement(root, "CountryOfRegistration",
                 rng->Pick(TpoxDomains::Nationalities()));
  doc.AddElement(root, "Issued",
                 StringPrintf("19%02d-%02d-%02d",
                              static_cast<int>(70 + rng->Uniform(30)),
                              static_cast<int>(1 + rng->Uniform(12)),
                              static_cast<int>(1 + rng->Uniform(28))));
  doc.AddElement(root, "MarketCap",
                 StringPrintf("%.0f", last * volume));
  return doc;
}

xml::Document GenerateOrderDocument(size_t id, size_t security_count,
                                    Random* rng) {
  xml::Document doc;
  doc.ReserveNodes(20);
  const xml::NodeIndex root = doc.AddRoot("FIXML");
  const xml::NodeIndex order = doc.AddElement(root, "Order");
  doc.AddAttribute(order, "ID", TpoxDomains::OrderId(id));
  doc.AddAttribute(order, "Side", rng->Bernoulli(0.5) ? "1" : "2");
  doc.AddAttribute(order, "TrdDt",
                   StringPrintf("2007-%02d-%02d",
                                static_cast<int>(1 + rng->Uniform(12)),
                                static_cast<int>(1 + rng->Uniform(28))));
  doc.AddAttribute(order, "OrdTyp", rng->Bernoulli(0.7) ? "2" : "1");
  doc.AddAttribute(order, "TmInForce", rng->Bernoulli(0.8) ? "0" : "6");
  const xml::NodeIndex instrmt = doc.AddElement(order, "Instrmt");
  // Skewed access: popular securities get most orders.
  const size_t sec =
      security_count == 0 ? 0 : rng->Zipf(security_count, 1.05);
  doc.AddElement(instrmt, "Sym", TpoxDomains::Symbol(sec));
  const xml::NodeIndex qty = doc.AddElement(order, "OrdQty");
  doc.AddAttribute(qty, "Qty",
                   StringPrintf("%llu", static_cast<unsigned long long>(
                                            10 + rng->Uniform(5000))));
  doc.AddElement(order, "Px",
                 StringPrintf("%.2f", rng->UniformDouble(5.0, 200.0)));
  const xml::NodeIndex hdr = doc.AddElement(order, "Hdr");
  doc.AddElement(hdr, "SenderCompID",
                 "BROKER" + std::to_string(rng->Uniform(40)));
  doc.AddElement(hdr, "TargetCompID", "EXCH" + std::to_string(rng->Uniform(5)));
  doc.AddElement(order, "Account",
                 std::to_string(1000 + rng->Uniform(500)));
  return doc;
}

xml::Document GenerateCustAccDocument(size_t id, Random* rng) {
  xml::Document doc;
  doc.ReserveNodes(64);
  const xml::NodeIndex root = doc.AddRoot("Customer");
  doc.AddElement(root, "Id",
                 std::to_string(TpoxDomains::CustomerId(id)));
  const xml::NodeIndex name = doc.AddElement(root, "Name");
  doc.AddElement(name, "FirstName", "First" + rng->NextString(5));
  doc.AddElement(name, "LastName", "Last" + rng->NextString(6));
  doc.AddElement(name, "ShortName",
                 StringPrintf("CUST%zu", id));
  doc.AddElement(root, "Nationality",
                 rng->Pick(TpoxDomains::Nationalities()));
  doc.AddElement(root, "Tier",
                 TpoxDomains::Tiers()[rng->Zipf(4, 1.2)]);
  doc.AddElement(root, "DateOfBirth",
                 StringPrintf("19%02d-%02d-%02d",
                              static_cast<int>(30 + rng->Uniform(60)),
                              static_cast<int>(1 + rng->Uniform(12)),
                              static_cast<int>(1 + rng->Uniform(28))));

  const xml::NodeIndex accounts = doc.AddElement(root, "Accounts");
  const size_t n_accounts = 1 + rng->Uniform(4);
  for (size_t a = 0; a < n_accounts; ++a) {
    const xml::NodeIndex account = doc.AddElement(accounts, "Account");
    doc.AddAttribute(account, "id",
                     StringPrintf("A%zu-%zu", id, a));
    doc.AddElement(account, "Currency",
                   rng->Pick(TpoxDomains::Currencies()));
    const xml::NodeIndex balance = doc.AddElement(account, "Balance");
    const xml::NodeIndex online = doc.AddElement(balance, "OnlineActualBal");
    doc.AddElement(online, "Amount",
                   StringPrintf("%.2f", rng->UniformDouble(100.0, 1000000.0)));
    doc.AddElement(account, "OpeningDate",
                   StringPrintf("20%02d-%02d-%02d",
                                static_cast<int>(rng->Uniform(8)),
                                static_cast<int>(1 + rng->Uniform(12)),
                                static_cast<int>(1 + rng->Uniform(28))));
  }
  // Contact information: one primary address plus spoken languages.
  const xml::NodeIndex address = doc.AddElement(root, "Address");
  doc.AddElement(address, "Street",
                 std::to_string(1 + rng->Uniform(9999)) + " " +
                     rng->NextString(8) + " St");
  doc.AddElement(address, "City", "City" + std::to_string(rng->Uniform(200)));
  doc.AddElement(address, "PostalCode",
                 StringPrintf("%05llu", static_cast<unsigned long long>(
                                            rng->Uniform(99999))));
  const xml::NodeIndex languages = doc.AddElement(root, "Languages");
  const size_t n_langs = 1 + rng->Uniform(3);
  static const std::vector<std::string> kLanguages = {
      "English", "French", "German", "Spanish", "Japanese", "Arabic"};
  for (size_t l = 0; l < n_langs; ++l) {
    doc.AddElement(languages, "Language", kLanguages[rng->Uniform(6)]);
  }
  return doc;
}

Status BuildTpoxDatabase(const TpoxScale& scale,
                         storage::DocumentStore* store,
                         storage::StatisticsCatalog* statistics) {
  Random rng(scale.seed);

  XIA_ASSIGN_OR_RETURN(storage::Collection * security,
                       store->CreateCollection(kSecurityCollection));
  for (size_t i = 0; i < scale.security_docs; ++i) {
    security->Add(GenerateSecurityDocument(i, &rng));
  }

  XIA_ASSIGN_OR_RETURN(storage::Collection * orders,
                       store->CreateCollection(kOrderCollection));
  for (size_t i = 0; i < scale.order_docs; ++i) {
    orders->Add(GenerateOrderDocument(i, scale.security_docs, &rng));
  }

  XIA_ASSIGN_OR_RETURN(storage::Collection * custacc,
                       store->CreateCollection(kCustAccCollection));
  for (size_t i = 0; i < scale.custacc_docs; ++i) {
    custacc->Add(GenerateCustAccDocument(i, &rng));
  }

  statistics->RunStats(*security);
  statistics->RunStats(*orders);
  statistics->RunStats(*custacc);
  return Status::OK();
}

}  // namespace xia::tpox
