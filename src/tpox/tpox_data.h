// TPoX-style data generation.
//
// The paper evaluates on the TPoX benchmark (Nicola et al., SIGMOD 2007):
// financial XML over three document types — Security (static reference
// data), Order (FIXML trade orders) and CustAcc (customers with accounts).
// The original 1 GB dataset and generator are external; this module
// generates documents with the same shapes, field types and value
// distributions, scaled by document count so experiments run at laptop
// scale. Budgets in the experiments are expressed relative to the
// All-Index configuration size, which keeps the paper's crossover
// structure comparable (see DESIGN.md).

#ifndef XIA_TPOX_TPOX_DATA_H_
#define XIA_TPOX_TPOX_DATA_H_

#include <cstdint>

#include "storage/document_store.h"
#include "storage/statistics.h"
#include "util/random.h"
#include "util/status.h"
#include "xml/document.h"

namespace xia::tpox {

/// Collection names.
inline constexpr const char* kSecurityCollection = "SDOC";
inline constexpr const char* kOrderCollection = "ODOC";
inline constexpr const char* kCustAccCollection = "CADOC";

/// Scale parameters.
struct TpoxScale {
  size_t security_docs = 1000;
  size_t order_docs = 2000;
  size_t custacc_docs = 500;
  uint64_t seed = 42;
};

/// Value domains shared by the generator and the workloads, so queries can
/// reference literals guaranteed to exist.
struct TpoxDomains {
  static const std::vector<std::string>& Sectors();
  static const std::vector<std::string>& Industries();
  static const std::vector<std::string>& SecurityTypes();
  static const std::vector<std::string>& Nationalities();
  static const std::vector<std::string>& Tiers();
  static const std::vector<std::string>& Currencies();

  /// Symbol of security `id` ("SYM000017").
  static std::string Symbol(size_t id);
  /// Order id string of order `id` ("100042").
  static std::string OrderId(size_t id);
  /// Customer numeric id of customer `id` (1000 + id).
  static int64_t CustomerId(size_t id);
};

/// Generates one Security document.
xml::Document GenerateSecurityDocument(size_t id, Random* rng);
/// Generates one FIXML Order document. `security_count` bounds the symbols
/// orders reference.
xml::Document GenerateOrderDocument(size_t id, size_t security_count,
                                    Random* rng);
/// Generates one Customer/Accounts document.
xml::Document GenerateCustAccDocument(size_t id, Random* rng);

/// Creates the three collections in `store`, fills them at `scale`, and
/// collects statistics into `statistics`.
Status BuildTpoxDatabase(const TpoxScale& scale,
                         storage::DocumentStore* store,
                         storage::StatisticsCatalog* statistics);

}  // namespace xia::tpox

#endif  // XIA_TPOX_TPOX_DATA_H_
