// XMark-flavoured secondary benchmark (Schmidt et al.).
//
// The paper reports XMark results in its extended technical report; we
// provide an auction-site generator (items, open auctions, persons) and a
// query set so the advisor can be exercised on a second, structurally
// different schema: deeper nesting, recursive-ish description markup and
// heavier use of attributes.

#ifndef XIA_TPOX_XMARK_H_
#define XIA_TPOX_XMARK_H_

#include "engine/query.h"
#include "storage/document_store.h"
#include "storage/statistics.h"
#include "util/random.h"
#include "util/status.h"
#include "xml/document.h"

namespace xia::tpox {

inline constexpr const char* kXmarkItemCollection = "XITEM";
inline constexpr const char* kXmarkAuctionCollection = "XAUCTION";
inline constexpr const char* kXmarkPersonCollection = "XPERSON";

/// Scale parameters for the XMark-style database.
struct XmarkScale {
  size_t items = 800;
  size_t auctions = 800;
  size_t persons = 400;
  uint64_t seed = 7;
};

xml::Document GenerateXmarkItem(size_t id, Random* rng);
xml::Document GenerateXmarkAuction(size_t id, size_t item_count,
                                   size_t person_count, Random* rng);
xml::Document GenerateXmarkPerson(size_t id, Random* rng);

/// Builds the three XMark collections and their statistics.
Status BuildXmarkDatabase(const XmarkScale& scale,
                          storage::DocumentStore* store,
                          storage::StatisticsCatalog* statistics);

/// Eight XMark-style queries over the generated data.
Result<engine::Workload> XmarkQueries();

}  // namespace xia::tpox

#endif  // XIA_TPOX_XMARK_H_
