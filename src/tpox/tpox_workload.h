// The TPoX-style query and update workloads.
//
// Eleven queries modeled on the TPoX benchmark specification's query set
// (get_security, get_security_price, search_securities, get_order,
// customer/account lookups, ...) re-expressed in XIA's FLWOR subset over
// the generated collections, plus an update mix of order inserts/deletes
// for the maintenance-cost experiments.

#ifndef XIA_TPOX_TPOX_WORKLOAD_H_
#define XIA_TPOX_TPOX_WORKLOAD_H_

#include "engine/query.h"
#include "util/random.h"
#include "util/status.h"

namespace xia::tpox {

/// The 11 TPoX-style queries (frequency 1 each). Literals reference values
/// the generator is guaranteed to produce.
Result<engine::Workload> TpoxQueries();

/// An update mix: `inserts` new-order insertions and `deletes` deletions of
/// existing orders by ID. `existing_orders` bounds which ids deletes name.
Result<engine::Workload> TpoxUpdates(size_t inserts, size_t deletes,
                                     size_t existing_orders, Random* rng);

/// The full TPoX-style transaction mix: the benchmark couples its queries
/// with insert/update/delete transactions (new orders, order price
/// updates, security price updates, customer tier changes, order
/// cancellations). Counts follow the given per-kind number.
Result<engine::Workload> TpoxTransactionMix(size_t per_kind,
                                            size_t security_count,
                                            size_t order_count,
                                            size_t customer_count,
                                            Random* rng);

}  // namespace xia::tpox

#endif  // XIA_TPOX_TPOX_WORKLOAD_H_
