#include "engine/executor.h"

#include <algorithm>
#include <set>

#include "engine/normalizer.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xpath/evaluator.h"

namespace xia::engine {

namespace {

// Collects result rows when enabled; pure counting otherwise.
struct RowSink {
  bool materialize = false;
  size_t max_rows = 0;
  std::vector<std::string>* rows = nullptr;

  void Emit(const xml::Document& doc, xml::NodeIndex node) {
    if (!materialize || rows->size() >= max_rows) return;
    const xml::Node& n = doc.node(node);
    // Leaf-ish results render as their value; subtrees as XML fragments.
    if (!n.has_children() || n.is_attribute()) {
      rows->push_back(n.label + "=" + n.value);
    } else {
      rows->push_back(xml::Serialize(doc, node));
    }
  }
};

// Evaluates the normalized query on one document: returns matched binding
// nodes, and counts (and optionally materializes) result items — return
// expressions per match, or the match itself.
uint64_t EvaluateOnDocument(const xml::Document& doc,
                            const NormalizedQuery& query, RowSink* sink) {
  const std::vector<xml::NodeIndex> matches =
      xpath::Evaluate(doc, query.path);
  if (matches.empty()) return 0;
  if (query.returns.empty()) {
    for (xml::NodeIndex m : matches) sink->Emit(doc, m);
    return matches.size();
  }
  uint64_t items = 0;
  for (xml::NodeIndex m : matches) {
    for (const auto& rel : query.returns) {
      if (rel.empty()) {
        sink->Emit(doc, m);
        ++items;
        continue;
      }
      std::vector<xml::NodeIndex> targets;
      // Relative evaluation from the matched node; a small dedicated walk
      // keeps it simple.
      struct Walker {
        const xml::Document& d;
        const std::vector<xpath::Step>& steps;
        std::vector<xml::NodeIndex>* out;
        void Go(xml::NodeIndex from, size_t idx, bool descend) {
          const xpath::Step& step = steps[idx];
          for (xml::NodeIndex c : d.children(from)) {
            if (step.MatchesLabel(d.node(c).label)) {
              if (idx + 1 == steps.size()) {
                out->push_back(c);
              } else {
                Go(c, idx + 1, steps[idx + 1].axis ==
                                   xpath::Axis::kDescendant);
              }
            }
            if (descend && d.node(c).is_element()) Go(c, idx, true);
          }
        }
      };
      Walker w{doc, rel, &targets};
      w.Go(m, 0, rel[0].axis == xpath::Axis::kDescendant);
      for (xml::NodeIndex t : targets) sink->Emit(doc, t);
      items += targets.size();
    }
  }
  return items;
}

}  // namespace

Result<std::vector<xml::DocId>> Executor::CandidateDocs(
    const Statement& statement, const optimizer::Plan& plan,
    ExecResult* result) {
  std::vector<std::set<xml::DocId>> leg_docs;
  for (const optimizer::PlanLeg& leg : plan.legs) {
    if (leg.index_is_virtual) {
      return Status::FailedPrecondition(
          "plan references virtual index " + leg.index_name +
          "; virtual indexes cannot be executed");
    }
    auto physical = catalog_->GetPhysical(leg.index_name);
    if (!physical.ok()) return physical.status();
    auto lookup = leg.predicate.existence
                      ? (*physical)->LookupAll()
                      : (*physical)->Lookup(leg.predicate.op,
                                            leg.predicate.literal);
    if (!lookup.ok()) return lookup.status();
    result->index_entries_scanned += lookup->rids.size();
    result->index_leaf_pages += lookup->leaf_pages_touched;
    std::set<xml::DocId> docs;
    for (const xml::NodeRef& rid : lookup->rids) docs.insert(rid.doc);
    leg_docs.push_back(std::move(docs));
  }
  if (leg_docs.empty()) return std::vector<xml::DocId>{};
  // Intersect across legs (single leg: identity).
  std::vector<xml::DocId> out(leg_docs[0].begin(), leg_docs[0].end());
  for (size_t i = 1; i < leg_docs.size(); ++i) {
    std::vector<xml::DocId> next;
    for (xml::DocId d : out) {
      if (leg_docs[i].count(d) != 0) next.push_back(d);
    }
    out = std::move(next);
  }
  (void)statement;
  return out;
}

Result<ExecResult> Executor::ExecuteQuery(const Statement& statement,
                                          const optimizer::Plan& plan,
                                          const ExecOptions& options) {
  XIA_FAULT_INJECT(fault::points::kExecutorScan);
  auto normalized = Normalize(statement);
  if (!normalized.ok()) return normalized.status();
  auto coll = store_->GetCollection(normalized->collection);
  if (!coll.ok()) return coll.status();

  ExecResult result;
  RowSink sink{options.materialize_rows, options.max_rows, &result.rows};
  Status interrupt;
  Stopwatch timer;
  if (plan.kind == optimizer::Plan::Kind::kCollectionScan) {
    (*coll)->ForEachWhile([&](xml::DocId, const xml::Document& doc) {
      interrupt = fault::CheckInterrupt(options.deadline, options.cancel);
      if (!interrupt.ok()) return false;
      ++result.docs_examined;
      result.result_count += EvaluateOnDocument(doc, *normalized, &sink);
      return true;
    });
    XIA_RETURN_IF_ERROR(interrupt);
  } else {
    auto docs = CandidateDocs(statement, plan, &result);
    if (!docs.ok()) return docs.status();
    for (xml::DocId id : *docs) {
      XIA_RETURN_IF_ERROR(
          fault::CheckInterrupt(options.deadline, options.cancel));
      if (!(*coll)->IsLive(id)) continue;
      ++result.docs_examined;
      result.result_count +=
          EvaluateOnDocument((*coll)->Get(id), *normalized, &sink);
    }
  }
  result.wall_seconds = timer.ElapsedSeconds();
  return result;
}

Result<ExecResult> Executor::ExecuteInsert(const Statement& statement) {
  const InsertSpec& ins = statement.insert_spec();
  auto coll = store_->GetCollection(ins.collection);
  if (!coll.ok()) return coll.status();
  auto doc = xml::Parse(ins.document_text);
  if (!doc.ok()) return doc.status();

  ExecResult result;
  Stopwatch timer;
  const xml::DocId id = (*coll)->Add(std::move(*doc));
  catalog_->NotifyInsert(ins.collection, id, (*coll)->Get(id));
  result.result_count = 1;
  result.wall_seconds = timer.ElapsedSeconds();
  return result;
}

Result<ExecResult> Executor::ExecuteDelete(const Statement& statement,
                                           const optimizer::Plan& plan,
                                           const ExecOptions& options) {
  const DeleteSpec& del = statement.delete_spec();
  auto coll = store_->GetCollection(del.collection);
  if (!coll.ok()) return coll.status();

  ExecResult result;
  Status interrupt;
  Stopwatch timer;
  std::vector<xml::DocId> victims;
  if (plan.legs.empty()) {
    (*coll)->ForEachWhile([&](xml::DocId id, const xml::Document& doc) {
      interrupt = fault::CheckInterrupt(options.deadline, options.cancel);
      if (!interrupt.ok()) return false;
      ++result.docs_examined;
      if (xpath::Exists(doc, del.match)) victims.push_back(id);
      return true;
    });
    XIA_RETURN_IF_ERROR(interrupt);
  } else {
    auto docs = CandidateDocs(statement, plan, &result);
    if (!docs.ok()) return docs.status();
    for (xml::DocId id : *docs) {
      XIA_RETURN_IF_ERROR(
          fault::CheckInterrupt(options.deadline, options.cancel));
      if (!(*coll)->IsLive(id)) continue;
      ++result.docs_examined;
      if (xpath::Exists((*coll)->Get(id), del.match)) victims.push_back(id);
    }
  }
  // Apply phase: runs to completion regardless of deadline (see
  // ExecOptions::deadline).
  for (xml::DocId id : victims) {
    catalog_->NotifyRemove(del.collection, id, (*coll)->Get(id));
    XIA_RETURN_IF_ERROR((*coll)->Remove(id));
  }
  result.result_count = victims.size();
  result.wall_seconds = timer.ElapsedSeconds();
  return result;
}

Result<ExecResult> Executor::ExecuteUpdate(const Statement& statement,
                                           const optimizer::Plan& plan,
                                           const ExecOptions& options) {
  const UpdateSpec& upd = statement.update_spec();
  auto coll = store_->GetCollection(upd.collection);
  if (!coll.ok()) return coll.status();

  ExecResult result;
  Status interrupt;
  Stopwatch timer;
  std::vector<xml::DocId> victims;
  if (plan.legs.empty()) {
    (*coll)->ForEachWhile([&](xml::DocId id, const xml::Document& doc) {
      interrupt = fault::CheckInterrupt(options.deadline, options.cancel);
      if (!interrupt.ok()) return false;
      ++result.docs_examined;
      if (xpath::Exists(doc, upd.match)) victims.push_back(id);
      return true;
    });
    XIA_RETURN_IF_ERROR(interrupt);
  } else {
    auto docs = CandidateDocs(statement, plan, &result);
    if (!docs.ok()) return docs.status();
    for (xml::DocId id : *docs) {
      XIA_RETURN_IF_ERROR(
          fault::CheckInterrupt(options.deadline, options.cancel));
      if (!(*coll)->IsLive(id)) continue;
      ++result.docs_examined;
      if (xpath::Exists((*coll)->Get(id), upd.match)) victims.push_back(id);
    }
  }

  const std::string new_value = upd.new_value.type == xpath::ValueType::kNumeric
                                    ? upd.new_value.ToString()
                                    : upd.new_value.string_value;
  for (xml::DocId id : victims) {
    // Index maintenance via remove/re-insert keeps every real index exact.
    catalog_->NotifyRemove(upd.collection, id, (*coll)->Get(id));
    (*coll)->Mutate(id, [&](xml::Document* doc) {
      for (xml::NodeIndex n : xpath::EvaluateLinear(*doc, upd.target)) {
        doc->SetValue(n, new_value);
        ++result.result_count;
      }
    });
    catalog_->NotifyInsert(upd.collection, id, (*coll)->Get(id));
  }
  result.wall_seconds = timer.ElapsedSeconds();
  return result;
}

Result<ExecResult> Executor::Execute(const Statement& statement,
                                     const optimizer::Plan& plan,
                                     const ExecOptions& options) {
  XIA_OBS_COUNT("xia.engine.statements_executed", 1);
  Result<ExecResult> result =
      statement.is_insert()   ? ExecuteInsert(statement)
      : statement.is_delete() ? ExecuteDelete(statement, plan, options)
      : statement.is_update() ? ExecuteUpdate(statement, plan, options)
                              : ExecuteQuery(statement, plan, options);
  if (result.ok()) {
    if (commit_log_ != nullptr && !statement.is_query()) {
      // Durability gate: a mutation is acknowledged (and shown to the
      // capture sink) only once the WAL has it.
      XIA_RETURN_IF_ERROR(commit_log_->OnCommit(statement));
    }
    XIA_OBS_COUNT("xia.engine.docs_examined", result->docs_examined);
    XIA_OBS_OBSERVE_LATENCY("xia.engine.exec.seconds", result->wall_seconds);
    if (sink_ != nullptr) sink_->OnExecuted(statement, *result);
  }
  return result;
}

Result<ExecResult> Executor::ExecuteBest(const Statement& statement,
                                         const optimizer::Optimizer& opt) {
  auto plan = opt.Optimize(statement);
  if (!plan.ok()) return plan.status();
  return Execute(statement, *plan);
}

Result<std::string> Executor::ExplainAnalyze(const Statement& statement,
                                             const optimizer::Plan& plan,
                                             const ExecOptions& options) {
  XIA_ASSIGN_OR_RETURN(const ExecResult result,
                       Execute(statement, plan, options));
  std::string out = plan.Describe() + "\n";
  out += StringPrintf(
      "  estimated: cost=%.1f result_docs=%.1f\n", plan.est_cost,
      plan.est_result_docs);
  out += StringPrintf(
      "  actual:    results=%llu docs_examined=%llu index_entries=%llu "
      "leaf_pages=%llu time=%.6fs\n",
      static_cast<unsigned long long>(result.result_count),
      static_cast<unsigned long long>(result.docs_examined),
      static_cast<unsigned long long>(result.index_entries_scanned),
      static_cast<unsigned long long>(result.index_leaf_pages),
      result.wall_seconds);
  return out;
}

}  // namespace xia::engine
