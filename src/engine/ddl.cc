#include "engine/ddl.h"

#include <vector>

#include "util/string_util.h"
#include "xpath/parser.h"

namespace xia::engine {

namespace {
constexpr const char* kUsage =
    "create index NAME on COLL PATTERN"
    " [string|numeric|structural] [virtual] [online]";
}  // namespace

Result<CreateIndexSpec> ParseCreateIndex(std::string_view text) {
  std::vector<std::string> tokens;
  for (auto& t : Split(text, ' ')) {
    if (!t.empty()) tokens.push_back(std::move(t));
  }
  size_t i = 0;
  if (i < tokens.size() && tokens[i] == "create") ++i;
  if (i < tokens.size() && tokens[i] == "index") ++i;
  if (tokens.size() < i + 4 || tokens[i + 1] != "on") {
    return Status::InvalidArgument(kUsage);
  }
  CreateIndexSpec spec;
  spec.name = tokens[i];
  spec.collection = tokens[i + 2];
  XIA_ASSIGN_OR_RETURN(xpath::Path path, xpath::ParsePattern(tokens[i + 3]));
  spec.pattern = xpath::IndexPattern{std::move(path),
                                     xpath::ValueType::kString};
  for (size_t j = i + 4; j < tokens.size(); ++j) {
    const std::string& mod = tokens[j];
    if (mod == "numeric") {
      spec.pattern.type = xpath::ValueType::kNumeric;
    } else if (mod == "string") {
      spec.pattern.type = xpath::ValueType::kString;
    } else if (mod == "structural") {
      spec.pattern.structural = true;
    } else if (mod == "virtual") {
      spec.is_virtual = true;
    } else if (mod == "online") {
      spec.online = true;
    } else {
      return Status::InvalidArgument("unknown modifier " + mod + "; " +
                                     kUsage);
    }
  }
  if (spec.is_virtual && spec.online) {
    return Status::InvalidArgument(
        "virtual indexes build nothing; 'online' does not apply");
  }
  return spec;
}

}  // namespace xia::engine
