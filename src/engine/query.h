// Workload statement model.
//
// XIA's query language is a FLWOR subset sufficient for the TPoX-style
// workloads the paper evaluates:
//
//   for $v in collection('SDOC')/Security[Yield > 4.5]
//   where $v/Symbol = "BCIIPRC" and $v/SecInfo/*/Sector = "Energy"
//   return $v/Name, $v/Symbol
//
// plus data-modification statements:
//
//   insert into SDOC <Security>...</Security>
//   delete from SDOC where /Security/Symbol = "OBSOLETE"
//
// A workload is a list of statements, each with an occurrence frequency
// (§III: the benefit of each unique statement is weighted by freq_s).

#ifndef XIA_ENGINE_QUERY_H_
#define XIA_ENGINE_QUERY_H_

#include <string>
#include <variant>
#include <vector>

#include "xpath/path.h"

namespace xia::engine {

/// One conjunct of a where clause: a path relative to the binding variable,
/// compared against a literal.
struct WhereCondition {
  std::vector<xpath::Step> relative_steps;
  xpath::CompareOp op = xpath::CompareOp::kEq;
  xpath::Literal literal;
};

/// A FLWOR query over one collection.
struct QuerySpec {
  std::string collection;
  /// Binding variable name without the '$'.
  std::string variable = "v";
  /// The for-clause path; may contain inline predicates.
  xpath::PathQuery binding;
  /// Conjunctive where clause.
  std::vector<WhereCondition> where;
  /// Return expressions: paths relative to the binding variable. An empty
  /// inner vector returns the binding node itself.
  std::vector<std::vector<xpath::Step>> returns;
};

/// Document insertion.
struct InsertSpec {
  std::string collection;
  /// Serialized document to insert.
  std::string document_text;
};

/// Deletion of every document with at least one node matching `match`.
struct DeleteSpec {
  std::string collection;
  xpath::PathQuery match;
};

/// Value update: in every document with a node matching `match`, set the
/// text value of every node reachable by `target` to `new_value`.
struct UpdateSpec {
  std::string collection;
  xpath::PathQuery match;
  /// Linear absolute path of the nodes to modify.
  xpath::Path target;
  xpath::Literal new_value;
};

/// A workload statement: a query or an update, plus its frequency.
struct Statement {
  std::variant<QuerySpec, InsertSpec, DeleteSpec, UpdateSpec> body;
  double frequency = 1.0;
  /// Short human-readable label ("TPoX-Q3").
  std::string label;
  /// Original text, if parsed from text.
  std::string text;

  bool is_query() const { return std::holds_alternative<QuerySpec>(body); }
  bool is_insert() const { return std::holds_alternative<InsertSpec>(body); }
  bool is_delete() const { return std::holds_alternative<DeleteSpec>(body); }
  bool is_update() const { return std::holds_alternative<UpdateSpec>(body); }
  /// True for the data-modification kinds (insert/delete/update) that
  /// incur index-maintenance cost (§III).
  bool is_modification() const { return !is_query(); }

  const QuerySpec& query() const { return std::get<QuerySpec>(body); }
  const InsertSpec& insert_spec() const { return std::get<InsertSpec>(body); }
  const DeleteSpec& delete_spec() const { return std::get<DeleteSpec>(body); }
  const UpdateSpec& update_spec() const { return std::get<UpdateSpec>(body); }

  /// The collection the statement touches.
  const std::string& collection() const;
};

using Workload = std::vector<Statement>;

/// Renders a statement back to (approximate) query-language text.
std::string ToText(const Statement& statement);

/// Merges duplicate statements, summing their frequencies, preserving the
/// first occurrence's position and label. §III computes the benefit of
/// each *unique* statement once and weights it by its frequency; compacting
/// up front makes every downstream optimizer probe count once per distinct
/// statement. Statements are considered duplicates when their bodies
/// compare equal (labels and original text are ignored).
Workload CompactWorkload(const Workload& workload);

/// Structural equality of statement bodies (used by CompactWorkload and
/// available for deduplication in clients).
bool SameStatementBody(const Statement& a, const Statement& b);

}  // namespace xia::engine

#endif  // XIA_ENGINE_QUERY_H_
