// Plan execution against the document store.
//
// The executor interprets physical plans: collection scans evaluate the
// normalized query on every live document; index plans probe real
// PathValueIndexes, intersect RID lists (index ANDing), fetch candidate
// documents and re-check the full query as a residual. Inserts and deletes
// apply the change and maintain every real index (this is the maintenance
// cost the advisor models).
//
// Plans that reference virtual indexes are rejected: virtual indexes exist
// only for what-if costing (§III).

#ifndef XIA_ENGINE_EXECUTOR_H_
#define XIA_ENGINE_EXECUTOR_H_

#include <cstdint>

#include "engine/query.h"
#include "fault/deadline.h"
#include "optimizer/optimizer.h"
#include "optimizer/plan.h"
#include "storage/catalog.h"
#include "storage/document_store.h"
#include "util/status.h"

namespace xia::engine {

/// Execution counters and results for one statement.
struct ExecResult {
  /// Result items produced (queries) or documents affected (updates).
  uint64_t result_count = 0;
  /// Documents materialized and evaluated.
  uint64_t docs_examined = 0;
  /// Index entries scanned across all legs.
  uint64_t index_entries_scanned = 0;
  /// Index leaf pages touched across all legs.
  uint64_t index_leaf_pages = 0;
  /// Wall-clock seconds.
  double wall_seconds = 0;
  /// Materialized result rows (serialized XML fragments or text values),
  /// capped at the ExecOptions row limit. Empty unless materialization was
  /// requested.
  std::vector<std::string> rows;
};

/// Per-execution options.
struct ExecOptions {
  /// Materialize result rows (queries only). Counting-only execution stays
  /// allocation-free on the result path.
  bool materialize_rows = false;
  /// Maximum rows materialized; counting continues past the cap.
  size_t max_rows = 100;
  /// Execution budget, polled once per document in scan loops. Mutating
  /// statements only poll while locating victims — once the apply phase
  /// starts it runs to completion, so a statement either fails before
  /// changing anything or applies fully. Infinite (the default) costs one
  /// branch per document.
  fault::Deadline deadline;
  /// Cooperative cancellation, polled alongside the deadline. Not owned.
  const fault::CancelToken* cancel = nullptr;
};

/// Receives every successfully executed statement. Implemented by
/// xia::workload's capture sink; defined here so the engine layer can
/// publish without depending on the workload layer. Implementations must
/// be safe to call from whichever thread drives the executor.
class QuerySink {
 public:
  virtual ~QuerySink() = default;
  /// Called after `statement` executed successfully under some plan.
  virtual void OnExecuted(const Statement& statement,
                          const ExecResult& result) = 0;
};

/// Durability hook: receives every successfully executed *mutating*
/// statement (insert/delete/update) before the execution is acknowledged
/// to the caller and before the capture sink sees it. Implemented by
/// xia::wal's WalManager; defined here so the engine layer can publish
/// without depending on the wal layer. A non-OK return fails the
/// statement: the in-memory apply has happened, but the mutation is not
/// durable and the caller must treat the execution as failed.
class CommitLog {
 public:
  virtual ~CommitLog() = default;
  virtual Status OnCommit(const Statement& statement) = 0;
};

/// Executes plans produced by the optimizer.
class Executor {
 public:
  Executor(storage::DocumentStore* store, storage::Catalog* catalog)
      : store_(store), catalog_(catalog) {}

  /// Publishes every successful execution to `sink` (nullptr disables).
  /// The executor does not own the sink.
  void set_sink(QuerySink* sink) { sink_ = sink; }
  QuerySink* sink() const { return sink_; }

  /// Commits every successful mutation through `log` (nullptr disables).
  /// The executor does not own the log. Ordering: WAL commit first, then
  /// metrics and the capture sink — a statement the sink observed is
  /// always durable.
  void set_commit_log(CommitLog* log) { commit_log_ = log; }
  CommitLog* commit_log() const { return commit_log_; }

  /// Executes `statement` under `plan`.
  Result<ExecResult> Execute(const Statement& statement,
                             const optimizer::Plan& plan,
                             const ExecOptions& options);
  Result<ExecResult> Execute(const Statement& statement,
                             const optimizer::Plan& plan) {
    return Execute(statement, plan, ExecOptions());
  }

  /// Optimizes with `opt` then executes the chosen plan.
  Result<ExecResult> ExecuteBest(const Statement& statement,
                                 const optimizer::Optimizer& opt);

  /// EXPLAIN ANALYZE: executes `plan` and renders the optimizer's
  /// estimates next to the actual execution counters.
  Result<std::string> ExplainAnalyze(const Statement& statement,
                                     const optimizer::Plan& plan,
                                     const ExecOptions& options);
  Result<std::string> ExplainAnalyze(const Statement& statement,
                                     const optimizer::Plan& plan) {
    return ExplainAnalyze(statement, plan, ExecOptions());
  }

 private:
  Result<ExecResult> ExecuteQuery(const Statement& statement,
                                  const optimizer::Plan& plan,
                                  const ExecOptions& options);
  Result<ExecResult> ExecuteInsert(const Statement& statement);
  Result<ExecResult> ExecuteDelete(const Statement& statement,
                                   const optimizer::Plan& plan,
                                   const ExecOptions& options);
  Result<ExecResult> ExecuteUpdate(const Statement& statement,
                                   const optimizer::Plan& plan,
                                   const ExecOptions& options);

  /// Candidate DocIds from the plan's index legs (deduplicated; ANDing
  /// intersects across legs). Populates counters on `result`.
  Result<std::vector<xml::DocId>> CandidateDocs(const Statement& statement,
                                                const optimizer::Plan& plan,
                                                ExecResult* result);

  storage::DocumentStore* store_;
  storage::Catalog* catalog_;
  QuerySink* sink_ = nullptr;
  CommitLog* commit_log_ = nullptr;
};

}  // namespace xia::engine

#endif  // XIA_ENGINE_EXECUTOR_H_
