// Query normalization: the rewrite phase of the optimizer front-end.
//
// A FLWOR query is rewritten into a single predicate-bearing path over its
// collection: where-clause conjuncts become path predicates attached to the
// binding path's last step. This is the rewrite that "exposes" indexable
// patterns the surface query hides (§IV: candidates C1 and C2 are only
// exposed by query rewrites of Q1 and Q2).

#ifndef XIA_ENGINE_NORMALIZER_H_
#define XIA_ENGINE_NORMALIZER_H_

#include <string>
#include <vector>

#include "engine/query.h"
#include "util/status.h"
#include "xpath/path.h"

namespace xia::engine {

/// A query statement after rewrite: one path with predicates, plus the
/// extraction paths of the return clause.
struct NormalizedQuery {
  std::string collection;
  /// Binding spine with all predicates (inline and rewritten-from-where).
  xpath::PathQuery path;
  /// Return expressions relative to the matched binding node.
  std::vector<std::vector<xpath::Step>> returns;
};

/// Normalizes a query statement. Returns InvalidArgument for non-query
/// statements.
Result<NormalizedQuery> Normalize(const Statement& statement);

/// Normalizes a delete statement's match path into the same shape (no
/// returns), so deletes can be planned like queries.
Result<NormalizedQuery> NormalizeDeleteMatch(const Statement& statement);

/// Normalizes an update statement's match path (the document-finding side
/// of the update), so updates can be planned like queries.
Result<NormalizedQuery> NormalizeUpdateMatch(const Statement& statement);

}  // namespace xia::engine

#endif  // XIA_ENGINE_NORMALIZER_H_
