// Text parser for the XIA query language (FLWOR subset + updates).
//
// Accepted forms (keywords case-insensitive, whitespace free-form):
//
//   for $v in collection('NAME')/path[preds]
//     [ where $v/rel/path op literal [ and ... ] ]
//     return $v | $v/rel/path [, ...] | <el>{$v/rel}</el>...
//
//   COLLECTION-FUNCTION('NAME')/... is accepted anywhere collection('NAME')
//   is (TPoX writes SECURITY('SDOC')/Security).
//
//   insert into NAME <xml document...>
//   delete from NAME where /absolute/path[preds]
//
// Element constructors in return clauses are not materialized; the parser
// extracts every $var/rel-path inside them as a return expression, which is
// what the optimizer and executor need.

#ifndef XIA_ENGINE_QUERY_PARSER_H_
#define XIA_ENGINE_QUERY_PARSER_H_

#include <string_view>

#include "engine/query.h"
#include "util/status.h"

namespace xia::engine {

/// Parses one statement. `frequency` and `label` are attached verbatim.
Result<Statement> ParseStatement(std::string_view text, double frequency = 1.0,
                                 std::string_view label = "");

/// Parses a workload file: statements separated by ';', '#' line comments,
/// and optional per-statement annotations immediately before a statement:
///
///   # the hot path
///   @freq=20 @label=get_security
///   for $s in collection('SDOC')/Security
///     where $s/Symbol = "SYM000017" return $s;
///
/// Returns every statement in order.
Result<Workload> ParseWorkloadText(std::string_view text);

}  // namespace xia::engine

#endif  // XIA_ENGINE_QUERY_PARSER_H_
