// Shared DDL text parsing.
//
// `create index` arrives from three fronts — the interactive shell, the
// wire protocol's kCreateIndex request, and xia_client's command line —
// and all three must accept the identical grammar:
//
//   create index NAME on COLL PATTERN
//       [string|numeric|structural] [virtual] [online]
//
// ParseCreateIndex holds that grammar in one place so the fronts cannot
// drift. The `online` modifier selects the non-blocking build
// (storage::BuildIndexOnline, DESIGN §16) instead of the offline build
// under an exclusive lock; it is meaningless (and rejected) together
// with `virtual`, which builds nothing.

#ifndef XIA_ENGINE_DDL_H_
#define XIA_ENGINE_DDL_H_

#include <string>
#include <string_view>

#include "util/status.h"
#include "xpath/path.h"

namespace xia::engine {

struct CreateIndexSpec {
  std::string name;
  std::string collection;
  xpath::IndexPattern pattern;
  bool is_virtual = false;
  bool online = false;
};

/// Parses the token stream of a create-index statement. Accepts the text
/// with or without the leading "create" / "index" keywords, i.e. all of
/// "create index s on C /P", "index s on C /P", and "s on C /P" parse to
/// the same spec.
Result<CreateIndexSpec> ParseCreateIndex(std::string_view text);

}  // namespace xia::engine

#endif  // XIA_ENGINE_DDL_H_
