#include "engine/query_parser.h"

#include <cctype>
#include <string>

#include "util/string_util.h"
#include "xpath/parser.h"

namespace xia::engine {

namespace {

class StatementParser {
 public:
  explicit StatementParser(std::string_view text) : text_(text) {}

  Result<Statement> Run(double frequency, std::string_view label) {
    Statement stmt;
    stmt.frequency = frequency;
    stmt.label = std::string(label);
    stmt.text = std::string(Trim(text_));

    SkipSpace();
    if (ConsumeKeyword("for")) {
      auto q = ParseFlwor();
      if (!q.ok()) return q.status();
      stmt.body = std::move(*q);
      return stmt;
    }
    if (ConsumeKeyword("insert")) {
      if (!ConsumeKeyword("into")) return Error("expected 'into'");
      auto name = ParseIdentifier();
      if (!name.ok()) return name.status();
      SkipSpace();
      InsertSpec ins;
      ins.collection = *name;
      ins.document_text = std::string(Trim(text_.substr(pos_)));
      if (ins.document_text.empty()) {
        return Error("insert requires a document");
      }
      stmt.body = std::move(ins);
      return stmt;
    }
    if (ConsumeKeyword("update")) {
      auto name = ParseIdentifier();
      if (!name.ok()) return name.status();
      if (!ConsumeKeyword("set")) return Error("expected 'set'");
      XIA_ASSIGN_OR_RETURN(std::string_view target_text, TakePathText());
      auto target = xpath::ParsePattern(target_text);
      if (!target.ok()) return target.status();
      SkipSpace();
      if (Eof() || Peek() != '=') return Error("expected '='");
      ++pos_;
      auto literal = ParseLiteralToken();
      if (!literal.ok()) return literal.status();
      if (!ConsumeKeyword("where")) return Error("expected 'where'");
      SkipSpace();
      auto match = xpath::ParseQuery(Trim(text_.substr(pos_)));
      if (!match.ok()) return match.status();
      UpdateSpec upd;
      upd.collection = *name;
      upd.target = std::move(*target);
      upd.new_value = std::move(*literal);
      upd.match = std::move(*match);
      stmt.body = std::move(upd);
      return stmt;
    }
    if (ConsumeKeyword("delete")) {
      if (!ConsumeKeyword("from")) return Error("expected 'from'");
      auto name = ParseIdentifier();
      if (!name.ok()) return name.status();
      if (!ConsumeKeyword("where")) return Error("expected 'where'");
      SkipSpace();
      auto path = xpath::ParseQuery(Trim(text_.substr(pos_)));
      if (!path.ok()) return path.status();
      DeleteSpec del;
      del.collection = *name;
      del.match = std::move(*path);
      stmt.body = std::move(del);
      return stmt;
    }
    return Error("expected 'for', 'insert', 'update' or 'delete'");
  }

 private:
  Status Error(const std::string& why) const {
    return Status::ParseError(StringPrintf(
        "query parse error at offset %zu: %s", pos_, why.c_str()));
  }

  bool Eof() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  void SkipSpace() {
    while (!Eof() && std::isspace(static_cast<unsigned char>(Peek()))) ++pos_;
  }

  static bool IsIdentChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  }

  // Case-insensitive keyword match followed by a non-identifier char.
  bool ConsumeKeyword(std::string_view kw) {
    SkipSpace();
    if (pos_ + kw.size() > text_.size()) return false;
    for (size_t i = 0; i < kw.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(text_[pos_ + i])) !=
          std::tolower(static_cast<unsigned char>(kw[i]))) {
        return false;
      }
    }
    const size_t after = pos_ + kw.size();
    if (after < text_.size() && IsIdentChar(text_[after])) return false;
    pos_ = after;
    return true;
  }

  Result<std::string> ParseIdentifier() {
    SkipSpace();
    if (Eof() || !IsIdentChar(Peek())) return Error("expected identifier");
    const size_t start = pos_;
    while (!Eof() && IsIdentChar(Peek())) ++pos_;
    return std::string(text_.substr(start, pos_ - start));
  }

  // collection('NAME') or ANYNAME('NAME').
  Result<std::string> ParseCollectionRef() {
    XIA_ASSIGN_OR_RETURN(std::string fn, ParseIdentifier());
    (void)fn;  // the function name is decorative (SECURITY, ORDER, ...)
    SkipSpace();
    if (Eof() || Peek() != '(') return Error("expected '(' in collection ref");
    ++pos_;
    SkipSpace();
    if (Eof() || (Peek() != '\'' && Peek() != '"')) {
      return Error("expected quoted collection name");
    }
    const char quote = Peek();
    ++pos_;
    const size_t start = pos_;
    while (!Eof() && Peek() != quote) ++pos_;
    if (Eof()) return Error("unterminated collection name");
    std::string name(text_.substr(start, pos_ - start));
    ++pos_;
    SkipSpace();
    if (!Eof() && Peek() == ')') {
      ++pos_;
    } else {
      return Error("expected ')'");
    }
    return name;
  }

  // A run of path characters starting at '/'; stops at whitespace that is
  // not inside a predicate bracket, or at a clause keyword boundary.
  Result<std::string_view> TakePathText() {
    SkipSpace();
    if (Eof() || Peek() != '/') return Error("expected path");
    const size_t start = pos_;
    int depth = 0;
    while (!Eof()) {
      const char c = Peek();
      if (c == '[') ++depth;
      if (c == ']') {
        --depth;
        ++pos_;  // the bracket belongs to the path
        continue;
      }
      if (depth == 0) {
        // Outside predicates only path characters continue the path; this
        // stops cleanly at clause keywords, commas, and element-constructor
        // syntax like "{$v/Name}</Security>".
        const bool path_char = std::isalnum(static_cast<unsigned char>(c)) ||
                               c == '/' || c == '*' || c == '@' || c == '_' ||
                               c == '-' || c == '.' || c == ':' || c == '[';
        if (!path_char) break;
      }
      ++pos_;
    }
    return text_.substr(start, pos_ - start);
  }

  // "$var" returning the bare name.
  Result<std::string> ParseVariable() {
    SkipSpace();
    if (Eof() || Peek() != '$') return Error("expected '$variable'");
    ++pos_;
    return ParseIdentifier();
  }

  // Relative steps after "$var", e.g. "/SecInfo/*/Sector" (may be empty).
  Result<std::vector<xpath::Step>> ParseRelativeAfterVariable() {
    std::vector<xpath::Step> steps;
    if (Eof() || Peek() != '/') return steps;
    // Reuse the xpath parser by parsing the remainder as an absolute path
    // over a synthetic text slice.
    auto path_text = TakePathText();
    if (!path_text.ok()) return path_text.status();
    auto parsed = xpath::ParseQuery(*path_text);
    if (!parsed.ok()) return parsed.status();
    if (!parsed->IsLinear()) {
      return Error("predicates are not allowed on variable-relative paths");
    }
    for (const auto& qs : parsed->steps()) steps.push_back(qs.step);
    return steps;
  }

  Result<xpath::Literal> ParseLiteralToken() {
    SkipSpace();
    if (Eof()) return Error("expected literal");
    const char c = Peek();
    if (c == '"' || c == '\'') {
      ++pos_;
      const size_t start = pos_;
      while (!Eof() && Peek() != c) ++pos_;
      if (Eof()) return Error("unterminated string");
      std::string s(text_.substr(start, pos_ - start));
      ++pos_;
      return xpath::Literal::String(std::move(s));
    }
    const size_t start = pos_;
    if (!Eof() && (Peek() == '-' || Peek() == '+')) ++pos_;
    while (!Eof() && (std::isdigit(static_cast<unsigned char>(Peek())) ||
                      Peek() == '.')) {
      ++pos_;
    }
    double v = 0;
    if (pos_ == start || !ParseDouble(text_.substr(start, pos_ - start), &v)) {
      return Error("expected literal");
    }
    return xpath::Literal::Number(v);
  }

  Result<xpath::CompareOp> ParseOp() {
    SkipSpace();
    if (Eof()) return Error("expected comparison operator");
    if (Peek() == '=') {
      ++pos_;
      return xpath::CompareOp::kEq;
    }
    if (Peek() == '!') {
      ++pos_;
      if (Eof() || Peek() != '=') return Error("expected '!='");
      ++pos_;
      return xpath::CompareOp::kNe;
    }
    if (Peek() == '<') {
      ++pos_;
      if (!Eof() && Peek() == '=') {
        ++pos_;
        return xpath::CompareOp::kLe;
      }
      return xpath::CompareOp::kLt;
    }
    if (Peek() == '>') {
      ++pos_;
      if (!Eof() && Peek() == '=') {
        ++pos_;
        return xpath::CompareOp::kGe;
      }
      return xpath::CompareOp::kGt;
    }
    return Error("expected comparison operator");
  }

  Result<QuerySpec> ParseFlwor() {
    QuerySpec q;
    XIA_ASSIGN_OR_RETURN(q.variable, ParseVariable());
    if (!ConsumeKeyword("in")) return Error("expected 'in'");
    SkipSpace();
    XIA_ASSIGN_OR_RETURN(q.collection, ParseCollectionRef());
    XIA_ASSIGN_OR_RETURN(std::string_view binding_text, TakePathText());
    auto binding = xpath::ParseQuery(binding_text);
    if (!binding.ok()) return binding.status();
    q.binding = std::move(*binding);

    if (ConsumeKeyword("where")) {
      for (;;) {
        WhereCondition cond;
        XIA_ASSIGN_OR_RETURN(std::string var, ParseVariable());
        if (var != q.variable) {
          return Error("unknown variable $" + var);
        }
        XIA_ASSIGN_OR_RETURN(cond.relative_steps, ParseRelativeAfterVariable());
        XIA_ASSIGN_OR_RETURN(cond.op, ParseOp());
        XIA_ASSIGN_OR_RETURN(cond.literal, ParseLiteralToken());
        q.where.push_back(std::move(cond));
        if (!ConsumeKeyword("and")) break;
      }
    }

    if (!ConsumeKeyword("return")) return Error("expected 'return'");
    // Extract every $var[/rel/path] from the remainder, ignoring element
    // constructor syntax around them.
    SkipSpace();
    while (!Eof()) {
      if (Peek() == '$') {
        XIA_ASSIGN_OR_RETURN(std::string var, ParseVariable());
        if (var != q.variable) return Error("unknown variable $" + var);
        XIA_ASSIGN_OR_RETURN(auto rel, ParseRelativeAfterVariable());
        q.returns.push_back(std::move(rel));
      } else {
        ++pos_;
      }
    }
    return q;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> ParseStatement(std::string_view text, double frequency,
                                 std::string_view label) {
  return StatementParser(text).Run(frequency, label);
}

namespace {

// Strips '#' comments (outside string literals) from one line.
std::string StripComment(std::string_view line) {
  bool in_string = false;
  char quote = 0;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_string) {
      if (c == quote) in_string = false;
    } else if (c == '"' || c == '\'') {
      in_string = true;
      quote = c;
    } else if (c == '#') {
      return std::string(line.substr(0, i));
    }
  }
  return std::string(line);
}

}  // namespace

Result<Workload> ParseWorkloadText(std::string_view text) {
  Workload workload;
  std::string pending;  // statement text accumulated so far
  double frequency = 1.0;
  std::string label;

  auto flush = [&]() -> Status {
    const std::string_view body = Trim(pending);
    if (body.empty()) return Status::OK();
    auto stmt = ParseStatement(body, frequency,
                               label.empty()
                                   ? StringPrintf("stmt-%zu",
                                                  workload.size() + 1)
                                   : label);
    if (!stmt.ok()) return stmt.status();
    workload.push_back(std::move(*stmt));
    pending.clear();
    frequency = 1.0;
    label.clear();
    return Status::OK();
  };

  for (const std::string& raw_line : Split(text, '\n')) {
    std::string line = StripComment(raw_line);
    std::string_view trimmed = Trim(line);
    // Annotations only apply before any statement text accumulates.
    while (Trim(pending).empty() && StartsWith(trimmed, "@")) {
      const size_t space = trimmed.find_first_of(" \t");
      const std::string_view ann = trimmed.substr(0, space);
      if (StartsWith(ann, "@freq=")) {
        double f = 0;
        if (!ParseDouble(ann.substr(6), &f) || f <= 0) {
          return Status::ParseError("bad @freq annotation: " +
                                    std::string(ann));
        }
        frequency = f;
      } else if (StartsWith(ann, "@label=")) {
        label = std::string(ann.substr(7));
      } else {
        return Status::ParseError("unknown annotation: " + std::string(ann));
      }
      trimmed = space == std::string_view::npos ? std::string_view()
                                                : Trim(trimmed.substr(space));
    }
    // Accumulate, splitting on ';' outside string literals.
    bool in_string = false;
    char quote = 0;
    for (const char c : trimmed) {
      if (in_string) {
        pending += c;
        if (c == quote) in_string = false;
        continue;
      }
      if (c == '"' || c == '\'') {
        in_string = true;
        quote = c;
        pending += c;
      } else if (c == ';') {
        XIA_RETURN_IF_ERROR(flush());
      } else {
        pending += c;
      }
    }
    pending += ' ';
  }
  XIA_RETURN_IF_ERROR(flush());
  if (workload.empty()) {
    return Status::InvalidArgument("workload contains no statements");
  }
  return workload;
}

}  // namespace xia::engine
