#include "engine/query.h"

namespace xia::engine {

const std::string& Statement::collection() const {
  if (is_query()) return query().collection;
  if (is_insert()) return insert_spec().collection;
  if (is_update()) return update_spec().collection;
  return delete_spec().collection;
}

bool SameStatementBody(const Statement& a, const Statement& b) {
  if (a.body.index() != b.body.index()) return false;
  if (a.is_query()) {
    const QuerySpec& qa = a.query();
    const QuerySpec& qb = b.query();
    if (qa.collection != qb.collection || !(qa.binding == qb.binding) ||
        qa.returns != qb.returns ||
        qa.where.size() != qb.where.size()) {
      return false;
    }
    for (size_t i = 0; i < qa.where.size(); ++i) {
      if (qa.where[i].relative_steps != qb.where[i].relative_steps ||
          qa.where[i].op != qb.where[i].op ||
          !(qa.where[i].literal == qb.where[i].literal)) {
        return false;
      }
    }
    return true;
  }
  if (a.is_insert()) {
    return a.insert_spec().collection == b.insert_spec().collection &&
           a.insert_spec().document_text == b.insert_spec().document_text;
  }
  if (a.is_update()) {
    const UpdateSpec& ua = a.update_spec();
    const UpdateSpec& ub = b.update_spec();
    return ua.collection == ub.collection && ua.match == ub.match &&
           ua.target == ub.target && ua.new_value == ub.new_value;
  }
  return a.delete_spec().collection == b.delete_spec().collection &&
         a.delete_spec().match == b.delete_spec().match;
}

Workload CompactWorkload(const Workload& workload) {
  Workload out;
  for (const Statement& stmt : workload) {
    bool merged = false;
    for (Statement& existing : out) {
      if (SameStatementBody(existing, stmt)) {
        existing.frequency += stmt.frequency;
        merged = true;
        break;
      }
    }
    if (!merged) out.push_back(stmt);
  }
  return out;
}

namespace {

std::string RelPathToText(const std::vector<xpath::Step>& steps) {
  std::string out;
  for (size_t i = 0; i < steps.size(); ++i) {
    if (i == 0) {
      if (steps[i].axis == xpath::Axis::kDescendant) out += "//";
    } else {
      out += (steps[i].axis == xpath::Axis::kChild) ? "/" : "//";
    }
    out += steps[i].name_test;
  }
  return out;
}

}  // namespace

std::string ToText(const Statement& statement) {
  if (!statement.text.empty()) return statement.text;
  if (statement.is_insert()) {
    return "insert into " + statement.insert_spec().collection + " <doc>";
  }
  if (statement.is_delete()) {
    return "delete from " + statement.delete_spec().collection + " where " +
           statement.delete_spec().match.ToString();
  }
  if (statement.is_update()) {
    const UpdateSpec& u = statement.update_spec();
    return "update " + u.collection + " set " + u.target.ToString() + " = " +
           u.new_value.ToString() + " where " + u.match.ToString();
  }
  const QuerySpec& q = statement.query();
  std::string out = "for $" + q.variable + " in collection('" +
                    q.collection + "')" + q.binding.ToString();
  for (size_t i = 0; i < q.where.size(); ++i) {
    out += (i == 0) ? " where " : " and ";
    out += "$" + q.variable + "/" + RelPathToText(q.where[i].relative_steps) +
           " " + xpath::CompareOpToString(q.where[i].op) + " " +
           q.where[i].literal.ToString();
  }
  out += " return ";
  if (q.returns.empty()) {
    out += "$" + q.variable;
  } else {
    for (size_t i = 0; i < q.returns.size(); ++i) {
      if (i > 0) out += ", ";
      out += "$" + q.variable;
      if (!q.returns[i].empty()) out += "/" + RelPathToText(q.returns[i]);
    }
  }
  return out;
}

}  // namespace xia::engine
