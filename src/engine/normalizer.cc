#include "engine/normalizer.h"

namespace xia::engine {

Result<NormalizedQuery> Normalize(const Statement& statement) {
  if (!statement.is_query()) {
    return Status::InvalidArgument("not a query statement");
  }
  const QuerySpec& q = statement.query();
  if (q.binding.empty()) {
    return Status::InvalidArgument("query has an empty binding path");
  }
  NormalizedQuery out;
  out.collection = q.collection;
  out.path = q.binding;
  // Rewrite each where conjunct into a predicate on the last binding step.
  for (const WhereCondition& cond : q.where) {
    xpath::Predicate pred;
    pred.relative_steps = cond.relative_steps;
    pred.op = cond.op;
    pred.literal = cond.literal;
    out.path.steps().back().predicates.push_back(std::move(pred));
  }
  out.returns = q.returns;
  return out;
}

Result<NormalizedQuery> NormalizeDeleteMatch(const Statement& statement) {
  if (!statement.is_delete()) {
    return Status::InvalidArgument("not a delete statement");
  }
  NormalizedQuery out;
  out.collection = statement.delete_spec().collection;
  out.path = statement.delete_spec().match;
  return out;
}

Result<NormalizedQuery> NormalizeUpdateMatch(const Statement& statement) {
  if (!statement.is_update()) {
    return Status::InvalidArgument("not an update statement");
  }
  NormalizedQuery out;
  out.collection = statement.update_spec().collection;
  out.path = statement.update_spec().match;
  return out;
}

}  // namespace xia::engine
