#include "workload/workload_io.h"

#include <cctype>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <cstdlib>

#include "engine/query_parser.h"
#include "fault/fault.h"
#include "util/atomic_file.h"
#include "util/crc32.h"
#include "util/string_util.h"

namespace xia::workload {

namespace {

// CRC trailer: the final line of a saved workload, e.g. "# crc32=1a2b3c4d".
// It is a valid comment, so files with the trailer still parse under any
// ParseWorkloadText — and files without one (hand-written or pre-CRC) load
// fine, just unverified.
constexpr char kCrcPrefix[] = "# crc32=";
constexpr size_t kCrcPrefixLen = sizeof(kCrcPrefix) - 1;
constexpr size_t kCrcLineLen = kCrcPrefixLen + 8 + 1;  // prefix + hex + \n

// If `text` ends with a CRC trailer line, extracts the stored checksum and
// the length of the body it covers. Returns false when no trailer exists.
bool FindCrcTrailer(const std::string& text, uint32_t* stored,
                    size_t* body_len) {
  if (text.size() < kCrcLineLen || text.back() != '\n') return false;
  const size_t line_start = text.size() - kCrcLineLen;
  if (line_start != 0 && text[line_start - 1] != '\n') return false;
  if (text.compare(line_start, kCrcPrefixLen, kCrcPrefix) != 0) return false;
  char hex[9] = {0};
  for (size_t i = 0; i < 8; ++i) {
    const char c = text[line_start + kCrcPrefixLen + i];
    if (!std::isxdigit(static_cast<unsigned char>(c))) return false;
    hex[i] = c;
  }
  *stored = static_cast<uint32_t>(std::strtoul(hex, nullptr, 16));
  *body_len = line_start;
  return true;
}

// Verifies the optional trailer, then parses.
Result<engine::Workload> VerifyAndParse(const std::string& text) {
  uint32_t stored = 0;
  size_t body_len = 0;
  if (FindCrcTrailer(text, &stored, &body_len)) {
    const uint32_t actual = Crc32(text.data(), body_len);
    if (actual != stored) {
      return Status::DataLoss(StringPrintf(
          "workload checksum mismatch: stored %08x, computed %08x", stored,
          actual));
    }
  }
  return engine::ParseWorkloadText(text);
}

// Deterministic frequency rendering: integral weights (the common case —
// accumulated capture counts) print without a fraction; anything else
// prints with enough digits to round-trip exactly through ParseDouble.
std::string FormatFrequency(double f) {
  if (f == std::floor(f) && std::fabs(f) < 1e15) {
    return StringPrintf("%.0f", f);
  }
  return StringPrintf("%.17g", f);
}

// Annotation values end at the first whitespace; statement text must stay
// on one line for the canonical form. Both are normalized here.
std::string SanitizeLabel(const std::string& label) {
  std::string out = label;
  for (char& c : out) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') c = '_';
  }
  return out;
}

std::string OneLine(const std::string& text) {
  std::string out = text;
  for (char& c : out) {
    if (c == '\n' || c == '\r' || c == '\t') c = ' ';
  }
  return out;
}

// True if `text` contains '#' outside single/double-quoted literals (the
// parser would truncate the line there).
bool HasUnquotedHash(const std::string& text) {
  bool in_string = false;
  char quote = 0;
  for (const char c : text) {
    if (in_string) {
      if (c == quote) in_string = false;
    } else if (c == '"' || c == '\'') {
      in_string = true;
      quote = c;
    } else if (c == '#') {
      return true;
    }
  }
  return false;
}

}  // namespace

Result<std::string> SerializeWorkload(const engine::Workload& workload) {
  XIA_FAULT_INJECT(fault::points::kWorkloadWrite);
  if (workload.empty()) {
    return Status::InvalidArgument("cannot serialize an empty workload");
  }
  std::string out =
      "# xia workload file — parseable by engine::ParseWorkloadText\n";
  for (size_t i = 0; i < workload.size(); ++i) {
    const engine::Statement& stmt = workload[i];
    const std::string text = OneLine(engine::ToText(stmt));
    if (HasUnquotedHash(text)) {
      return Status::InvalidArgument(
          StringPrintf("statement %zu contains '#' outside a string "
                       "literal and cannot be saved in the text format",
                       i + 1));
    }
    // Default the label the way ParseWorkloadText would, so a save/load
    // cycle reproduces the file byte for byte.
    std::string label = SanitizeLabel(stmt.label);
    if (label.empty()) label = StringPrintf("stmt-%zu", i + 1);
    out += StringPrintf("@freq=%s @label=%s\n",
                        FormatFrequency(stmt.frequency).c_str(),
                        label.c_str());
    out += text + ";\n";
  }
  out += StringPrintf("%s%08x\n", kCrcPrefix, Crc32(out));
  return out;
}

Result<engine::Workload> DeserializeWorkload(const std::string& text) {
  XIA_FAULT_INJECT(fault::points::kWorkloadRead);
  return VerifyAndParse(text);
}

Status SaveWorkloadToFile(const engine::Workload& workload,
                          const std::string& path) {
  namespace fs = std::filesystem;
  const fs::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    if (!fs::is_directory(p.parent_path(), ec)) {
      return Status::NotFound("directory does not exist: " +
                              p.parent_path().string());
    }
  }
  XIA_ASSIGN_OR_RETURN(std::string text, SerializeWorkload(workload));
  // Stage-and-rename: a crash mid-save never clobbers the previous good
  // file.
  return WriteFileAtomic(path, text);
}

Result<engine::Workload> LoadWorkloadFromFile(const std::string& path) {
  XIA_FAULT_INJECT(fault::points::kWorkloadRead);
  std::ifstream in(path);
  if (!in) return Status::NotFound("workload file: " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return VerifyAndParse(buffer.str());
}

}  // namespace xia::workload
