#include "workload/workload_io.h"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "engine/query_parser.h"
#include "util/string_util.h"

namespace xia::workload {

namespace {

// Deterministic frequency rendering: integral weights (the common case —
// accumulated capture counts) print without a fraction; anything else
// prints with enough digits to round-trip exactly through ParseDouble.
std::string FormatFrequency(double f) {
  if (f == std::floor(f) && std::fabs(f) < 1e15) {
    return StringPrintf("%.0f", f);
  }
  return StringPrintf("%.17g", f);
}

// Annotation values end at the first whitespace; statement text must stay
// on one line for the canonical form. Both are normalized here.
std::string SanitizeLabel(const std::string& label) {
  std::string out = label;
  for (char& c : out) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') c = '_';
  }
  return out;
}

std::string OneLine(const std::string& text) {
  std::string out = text;
  for (char& c : out) {
    if (c == '\n' || c == '\r' || c == '\t') c = ' ';
  }
  return out;
}

// True if `text` contains '#' outside single/double-quoted literals (the
// parser would truncate the line there).
bool HasUnquotedHash(const std::string& text) {
  bool in_string = false;
  char quote = 0;
  for (const char c : text) {
    if (in_string) {
      if (c == quote) in_string = false;
    } else if (c == '"' || c == '\'') {
      in_string = true;
      quote = c;
    } else if (c == '#') {
      return true;
    }
  }
  return false;
}

}  // namespace

Result<std::string> SerializeWorkload(const engine::Workload& workload) {
  if (workload.empty()) {
    return Status::InvalidArgument("cannot serialize an empty workload");
  }
  std::string out =
      "# xia workload file — parseable by engine::ParseWorkloadText\n";
  for (size_t i = 0; i < workload.size(); ++i) {
    const engine::Statement& stmt = workload[i];
    const std::string text = OneLine(engine::ToText(stmt));
    if (HasUnquotedHash(text)) {
      return Status::InvalidArgument(
          StringPrintf("statement %zu contains '#' outside a string "
                       "literal and cannot be saved in the text format",
                       i + 1));
    }
    // Default the label the way ParseWorkloadText would, so a save/load
    // cycle reproduces the file byte for byte.
    std::string label = SanitizeLabel(stmt.label);
    if (label.empty()) label = StringPrintf("stmt-%zu", i + 1);
    out += StringPrintf("@freq=%s @label=%s\n",
                        FormatFrequency(stmt.frequency).c_str(),
                        label.c_str());
    out += text + ";\n";
  }
  return out;
}

Result<engine::Workload> DeserializeWorkload(const std::string& text) {
  return engine::ParseWorkloadText(text);
}

Status SaveWorkloadToFile(const engine::Workload& workload,
                          const std::string& path) {
  namespace fs = std::filesystem;
  const fs::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    if (!fs::is_directory(p.parent_path(), ec)) {
      return Status::NotFound("directory does not exist: " +
                              p.parent_path().string());
    }
  }
  XIA_ASSIGN_OR_RETURN(std::string text, SerializeWorkload(workload));
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Internal("cannot open for writing: " + path);
  out << text;
  out.close();
  if (!out) return Status::Internal("write failed: " + path);
  return Status::OK();
}

Result<engine::Workload> LoadWorkloadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("workload file: " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return engine::ParseWorkloadText(buffer.str());
}

}  // namespace xia::workload
