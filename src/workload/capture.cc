#include "workload/capture.h"

#include "obs/metrics.h"

namespace xia::workload {

WorkloadCapture::WorkloadCapture(size_t capacity) : capacity_(capacity) {
  batch_.reserve(capacity_ < 1024 ? capacity_ : 1024);
}

void WorkloadCapture::OnExecuted(const engine::Statement& statement,
                                 const engine::ExecResult& result) {
  Publish(statement, result.wall_seconds);
}

bool WorkloadCapture::Publish(const engine::Statement& statement,
                              double wall_seconds) {
  if (!enabled()) return false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (batch_.size() >= capacity_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      XIA_OBS_COUNT("xia.workload.capture.dropped", 1);
      return false;
    }
    CapturedQuery cq;
    cq.statement = statement;
    cq.wall_seconds = wall_seconds;
    cq.sequence = next_sequence_++;
    batch_.push_back(std::move(cq));
  }
  published_.fetch_add(1, std::memory_order_relaxed);
  XIA_OBS_COUNT("xia.workload.capture.published", 1);
  return true;
}

std::vector<CapturedQuery> WorkloadCapture::Drain() {
  std::vector<CapturedQuery> out;
  out.reserve(64);
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.swap(batch_);
  }
  drained_.fetch_add(out.size(), std::memory_order_relaxed);
  XIA_OBS_COUNT("xia.workload.capture.drained", out.size());
  XIA_OBS_GAUGE_SET("xia.workload.capture.pending", pending());
  return out;
}

size_t WorkloadCapture::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batch_.size();
}

}  // namespace xia::workload
