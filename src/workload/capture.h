// xia::workload — online workload capture.
//
// WorkloadCapture is the thread-safe sink the executor (and any other
// query entry point) publishes every executed statement into. It is the
// front of the capture → templatize → advise lifecycle: producers append
// into a mutex-guarded batch under a small critical section (one vector
// push_back; no parsing, no allocation beyond the statement copy), and the
// online advisor periodically swaps the whole batch out with Drain().
// This batch-swap design keeps the producer critical section O(1) and the
// consumer contention to one swap per drain, which is what lets capture
// ride on the query hot path.
//
// Capacity is bounded: when `capacity` entries are already pending, new
// publications are counted as dropped rather than growing without limit
// (a stalled consumer must not turn into unbounded memory growth under
// heavy traffic). Sequence numbers are assigned per accepted entry so
// tests can assert no loss or duplication across the concurrent path.

#ifndef XIA_WORKLOAD_CAPTURE_H_
#define XIA_WORKLOAD_CAPTURE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "engine/executor.h"
#include "engine/query.h"

namespace xia::workload {

/// One captured execution: the statement plus its observed wall time and
/// a process-unique sequence number (assigned in publish order).
struct CapturedQuery {
  engine::Statement statement;
  double wall_seconds = 0;
  uint64_t sequence = 0;
};

/// Thread-safe capture sink. Any number of producer threads may Publish
/// (or be driven through the engine::QuerySink interface) concurrently
/// with one or more Drain() consumers.
class WorkloadCapture : public engine::QuerySink {
 public:
  /// `capacity` bounds the pending batch; beyond it publications are
  /// dropped (and counted).
  explicit WorkloadCapture(size_t capacity = kDefaultCapacity);

  /// engine::QuerySink: captures every successfully executed statement
  /// with its measured wall time.
  void OnExecuted(const engine::Statement& statement,
                  const engine::ExecResult& result) override;

  /// Publishes one statement. Returns false if the capture is disabled or
  /// full (the statement was not captured).
  bool Publish(const engine::Statement& statement, double wall_seconds = 0);

  /// Swaps out and returns every pending entry, oldest first.
  std::vector<CapturedQuery> Drain();

  /// Entries currently pending (published, not yet drained).
  size_t pending() const;

  /// A disabled capture ignores publications (cheap: one relaxed atomic
  /// load on the hot path). Captures start disabled; monitoring turns
  /// them on.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Lifetime counters (accepted / rejected-full / handed to Drain).
  uint64_t published() const {
    return published_.load(std::memory_order_relaxed);
  }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  uint64_t drained() const { return drained_.load(std::memory_order_relaxed); }

  size_t capacity() const { return capacity_; }

  static constexpr size_t kDefaultCapacity = 65536;

 private:
  const size_t capacity_;
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> published_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> drained_{0};

  mutable std::mutex mu_;
  std::vector<CapturedQuery> batch_;  // guarded by mu_
  uint64_t next_sequence_ = 0;        // guarded by mu_
};

}  // namespace xia::workload

#endif  // XIA_WORKLOAD_CAPTURE_H_
