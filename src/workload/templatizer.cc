#include "workload/templatizer.h"

#include "engine/normalizer.h"
#include "obs/metrics.h"
#include "util/string_util.h"

namespace xia::workload {

namespace {

// Typed constant marker: queries that differ only in the compared value
// share a key; queries comparing a string vs a number do not (the literal
// type decides the candidate index's value type).
const char* Marker(const xpath::Literal& literal) {
  return literal.type == xpath::ValueType::kNumeric ? "?n" : "?s";
}

std::string MaskedRelSteps(const std::vector<xpath::Step>& steps) {
  std::string out;
  for (size_t i = 0; i < steps.size(); ++i) {
    if (i > 0 || steps[i].axis == xpath::Axis::kDescendant) {
      out += (steps[i].axis == xpath::Axis::kChild) ? "/" : "//";
    }
    out += steps[i].name_test;
  }
  return out.empty() ? "." : out;
}

std::string MaskedPredicate(const xpath::Predicate& pred) {
  std::string out = "[" + MaskedRelSteps(pred.relative_steps);
  if (pred.is_comparison()) {
    out += std::string(" ") + xpath::CompareOpToString(*pred.op) + " " +
           Marker(pred.literal);
  }
  out += "]";
  return out;
}

std::string MaskedPathQuery(const xpath::PathQuery& path) {
  std::string out;
  for (const auto& qs : path.steps()) {
    out += (qs.step.axis == xpath::Axis::kChild) ? "/" : "//";
    out += qs.step.name_test;
    for (const auto& pred : qs.predicates) out += MaskedPredicate(pred);
  }
  return out;
}

std::string ReturnsKey(const std::vector<std::vector<xpath::Step>>& returns) {
  std::string out;
  for (const auto& r : returns) {
    out += "," + MaskedRelSteps(r);
  }
  return out;
}

}  // namespace

std::string TemplateKey(const engine::Statement& statement) {
  if (statement.is_insert()) {
    // All inserts into a collection are one template: the advisor charges
    // maintenance per inserted document, not per document content.
    return "i|" + statement.insert_spec().collection;
  }
  if (statement.is_delete()) {
    return "d|" + statement.delete_spec().collection + "|" +
           MaskedPathQuery(statement.delete_spec().match);
  }
  if (statement.is_update()) {
    const engine::UpdateSpec& u = statement.update_spec();
    return "u|" + u.collection + "|" + MaskedPathQuery(u.match) + "|set:" +
           u.target.ToString() + "=" + Marker(u.new_value);
  }
  // Queries dedupe on their *normalized* shape: where-clause conjuncts and
  // equivalent inline predicates are one template.
  auto normalized = engine::Normalize(statement);
  if (normalized.ok()) {
    return "q|" + normalized->collection + "|" +
           MaskedPathQuery(normalized->path) + "|ret:" +
           ReturnsKey(normalized->returns);
  }
  // Normalization of a well-formed query never fails today; fall back to
  // the un-normalized shape so a capture stream can't error out.
  const engine::QuerySpec& q = statement.query();
  std::string key = "q!|" + q.collection + "|" + MaskedPathQuery(q.binding);
  for (const auto& w : q.where) {
    key += "|w:" + MaskedRelSteps(w.relative_steps) + " " +
           xpath::CompareOpToString(w.op) + " " + Marker(w.literal);
  }
  return key + "|ret:" + ReturnsKey(q.returns);
}

bool Templatizer::Add(const engine::Statement& statement, double weight,
                      double observed_seconds) {
  const std::string key = TemplateKey(statement);
  ++raw_count_;
  XIA_OBS_COUNT("xia.workload.templatizer.raw", 1);
  auto [it, inserted] = index_.emplace(key, templates_.size());
  if (inserted) {
    TemplateInfo info;
    info.key = key;
    info.representative = statement;
    templates_.push_back(std::move(info));
  }
  TemplateInfo& info = templates_[it->second];
  ++info.count;
  info.weight += weight;
  info.total_seconds += observed_seconds;
  XIA_OBS_GAUGE_SET("xia.workload.templatizer.templates", templates_.size());
  XIA_OBS_GAUGE_SET("xia.workload.templatizer.dedup_ratio", DedupRatio());
  return inserted;
}

size_t Templatizer::AddBatch(const std::vector<CapturedQuery>& batch) {
  size_t opened = 0;
  for (const CapturedQuery& cq : batch) {
    if (Add(cq.statement, 1.0, cq.wall_seconds)) ++opened;
  }
  return opened;
}

size_t Templatizer::AddWorkload(const engine::Workload& workload) {
  size_t opened = 0;
  for (const engine::Statement& stmt : workload) {
    if (Add(stmt, stmt.frequency)) ++opened;
  }
  return opened;
}

double Templatizer::DedupRatio() const {
  if (templates_.empty()) return 0;
  return static_cast<double>(raw_count_) /
         static_cast<double>(templates_.size());
}

engine::Workload Templatizer::ToWorkload() const {
  engine::Workload out;
  out.reserve(templates_.size());
  for (size_t i = 0; i < templates_.size(); ++i) {
    engine::Statement stmt = templates_[i].representative;
    stmt.frequency = templates_[i].weight;
    if (stmt.label.empty()) stmt.label = StringPrintf("tmpl-%zu", i + 1);
    out.push_back(std::move(stmt));
  }
  return out;
}

void Templatizer::Clear() {
  templates_.clear();
  index_.clear();
  raw_count_ = 0;
  XIA_OBS_GAUGE_SET("xia.workload.templatizer.templates", 0);
  XIA_OBS_GAUGE_SET("xia.workload.templatizer.dedup_ratio", 0);
}

}  // namespace xia::workload
