#include "workload/online_advisor.h"

#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <utility>

#include "fault/fault.h"
#include "obs/metrics.h"

namespace xia::workload {

namespace {

// Identity of a recommended index for churn accounting: collection +
// pattern (ToString covers path, value type and structural-ness).
std::set<std::string> IndexKeys(const advisor::Recommendation& rec) {
  std::set<std::string> keys;
  for (const auto& ri : rec.indexes) {
    keys.insert(ri.collection + "|" + ri.pattern.ToString());
  }
  return keys;
}

}  // namespace

OnlineAdvisor::OnlineAdvisor(WorkloadCapture* capture,
                             advisor::IndexAdvisor* advisor,
                             OnlineAdvisorOptions options,
                             std::mutex* db_mutex)
    : capture_(capture),
      advisor_(advisor),
      options_(std::move(options)),
      db_mutex_(db_mutex) {
  // One pool for the advisor's lifetime: per-pass pools would pay thread
  // spawn/join on every advise pass. An externally supplied pool wins.
  if (options_.advisor.pool == nullptr) {
    const size_t threads =
        options_.advisor.threads == 0
            ? util::ThreadPool::DefaultThreadCount()
            : options_.advisor.threads;
    if (threads > 1) {
      pool_ = std::make_unique<util::ThreadPool>(threads);
      options_.advisor.pool = pool_.get();
    }
  }
}

OnlineAdvisor::~OnlineAdvisor() { Stop(); }

Status OnlineAdvisor::Start() {
  if (thread_.joinable()) {
    return Status::FailedPrecondition("online advisor already running");
  }
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_requested_ = false;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    since_last_advise_.Restart();
    since_last_checkpoint_.Restart();
  }
  capture_->set_enabled(true);
  thread_ = std::thread(&OnlineAdvisor::Loop, this);
  return Status::OK();
}

void OnlineAdvisor::Stop() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  thread_.join();
  capture_->set_enabled(false);
}

bool OnlineAdvisor::running() const { return thread_.joinable(); }

void OnlineAdvisor::Loop() {
  const auto poll = std::chrono::duration<double>(
      options_.poll_interval_seconds);
  std::unique_lock<std::mutex> lock(stop_mu_);
  while (!stop_requested_) {
    stop_cv_.wait_for(lock, poll, [this] { return stop_requested_; });
    if (stop_requested_) break;
    lock.unlock();
    {
      std::lock_guard<std::mutex> state(mu_);
      const size_t pending = capture_->pending();
      const bool due =
          pending >= options_.min_new_queries ||
          (pending > 0 && since_last_advise_.ElapsedSeconds() >=
                              options_.advise_interval_seconds);
      // Advise failures (e.g. an empty store) are surfaced via the
      // failure counter; the loop keeps running.
      if (due) (void)DrainAndAdviseLocked();
    }
    MaybeCheckpoint();
    lock.lock();
  }
}

void OnlineAdvisor::MaybeCheckpoint() {
  if (!options_.checkpoint_fn) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (since_last_checkpoint_.ElapsedSeconds() <
        options_.checkpoint_interval_seconds) {
      return;
    }
    since_last_checkpoint_.Restart();
  }
  // The callback locks the db mutex itself; holding mu_ across it would
  // invert the mu_ -> db_mutex order used by advise passes.
  const Status s = options_.checkpoint_fn();
  std::lock_guard<std::mutex> lock(mu_);
  if (s.ok()) {
    ++checkpoints_;
    last_checkpoint_error_.clear();
    XIA_OBS_COUNT("xia.workload.online.checkpoints", 1);
  } else {
    ++checkpoint_failures_;
    last_checkpoint_error_ = s.ToString();
    XIA_OBS_COUNT("xia.workload.online.checkpoint_failures", 1);
  }
}

Status OnlineAdvisor::AdviseNow() {
  std::lock_guard<std::mutex> lock(mu_);
  return DrainAndAdviseLocked();
}

Status OnlineAdvisor::DrainAndAdviseLocked() {
  // Captures fold into the templatizer even while the breaker is open, so
  // the workload picture stays current and the half-open probe advises on
  // everything seen during the outage.
  const std::vector<CapturedQuery> batch = capture_->Drain();
  templatizer_.AddBatch(batch);
  queries_seen_ += batch.size();
  if (templatizer_.empty()) {
    return Status::FailedPrecondition("no queries captured yet");
  }

  const bool half_open_probe = circuit_open_;
  if (circuit_open_ &&
      circuit_opened_.ElapsedSeconds() < options_.circuit_cooldown_seconds) {
    return Status::Unavailable(
        "online advising suspended: circuit breaker open after " +
        std::to_string(consecutive_failures_) + " consecutive failures");
  }

  const engine::Workload workload = templatizer_.ToWorkload();
  // The fault point sits inside the attempt loop, so an Nth-hit fault
  // exercises retry recovery rather than failing the whole pass.
  fault::FaultPoint* fault_point =
      fault::FaultRegistry::Global().GetPoint(fault::points::kOnlineAdvise);

  Stopwatch timer;
  // A half-open probe gets exactly one attempt; a closed-breaker pass
  // retries with exponential backoff. Backoff sleeps hold mu_, which is
  // why the defaults keep the worst case well under a poll interval.
  const int max_attempts = half_open_probe ? 1 : options_.max_retries + 1;
  double backoff = options_.backoff_initial_seconds;
  Result<advisor::Recommendation> rec =
      Status::Internal("online advise pass never attempted");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      ++advise_retries_;
      XIA_OBS_COUNT("xia.workload.online.retries", 1);
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      backoff *= options_.backoff_multiplier;
    }
    if (fault_point->ShouldFire()) {
      rec = fault_point->InjectedStatus();
      continue;
    }
    rec = [&] {
      if (db_mutex_ != nullptr) {
        std::lock_guard<std::mutex> db(*db_mutex_);
        return advisor_->Recommend(workload, options_.advisor);
      }
      return advisor_->Recommend(workload, options_.advisor);
    }();
    if (rec.ok()) break;
  }
  const double seconds = timer.ElapsedSeconds();

  if (!rec.ok()) {
    ++advise_failures_;
    ++consecutive_failures_;
    last_error_ = rec.status().ToString();
    XIA_OBS_COUNT("xia.workload.online.advise_failures", 1);
    if (circuit_open_) {
      // Failed half-open probe: stay open for another cooldown.
      circuit_opened_.Restart();
    } else if (consecutive_failures_ >=
               static_cast<uint64_t>(options_.circuit_breaker_failures)) {
      circuit_open_ = true;
      ++circuit_opens_;
      circuit_opened_.Restart();
      XIA_OBS_COUNT("xia.workload.online.circuit_opens", 1);
      XIA_OBS_GAUGE_SET("xia.workload.online.circuit_open", 1);
    }
    return rec.status();
  }

  consecutive_failures_ = 0;
  last_error_.clear();
  if (circuit_open_) {
    circuit_open_ = false;  // successful probe closes the breaker
    XIA_OBS_GAUGE_SET("xia.workload.online.circuit_open", 0);
  }

  const std::set<std::string> before = IndexKeys(recommendation_);
  const std::set<std::string> after = IndexKeys(*rec);
  size_t entered = 0;
  for (const std::string& k : after) entered += before.count(k) == 0;
  size_t left = 0;
  for (const std::string& k : before) left += after.count(k) == 0;
  // The very first pass is all "entering"; that is the honest reading
  // (the configuration went from nothing to something).

  recommendation_ = std::move(*rec);
  has_recommendation_ = true;
  ++advise_runs_;
  last_advise_seconds_ = seconds;
  last_entered_ = entered;
  last_left_ = left;
  since_last_advise_.Restart();

  XIA_OBS_COUNT("xia.workload.online.advise_runs", 1);
  XIA_OBS_COUNT("xia.workload.online.churn_entered", entered);
  XIA_OBS_COUNT("xia.workload.online.churn_left", left);
  XIA_OBS_OBSERVE_LATENCY("xia.workload.online.advise_seconds", seconds);
  return Status::OK();
}

OnlineAdvisorStatus OnlineAdvisor::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  OnlineAdvisorStatus status;
  status.running = running();
  status.queries_seen = queries_seen_;
  status.template_count = templatizer_.template_count();
  status.dedup_ratio = templatizer_.DedupRatio();
  status.advise_runs = advise_runs_;
  status.advise_failures = advise_failures_;
  status.advise_retries = advise_retries_;
  status.consecutive_failures = consecutive_failures_;
  status.circuit_open = circuit_open_;
  status.circuit_opens = circuit_opens_;
  status.last_error = last_error_;
  status.last_advise_seconds = last_advise_seconds_;
  status.last_entered = last_entered_;
  status.last_left = last_left_;
  status.has_recommendation = has_recommendation_;
  if (has_recommendation_) status.recommendation = recommendation_;
  status.checkpoints = checkpoints_;
  status.checkpoint_failures = checkpoint_failures_;
  status.last_checkpoint_error = last_checkpoint_error_;
  return status;
}

engine::Workload OnlineAdvisor::CurrentWorkload() const {
  std::lock_guard<std::mutex> lock(mu_);
  return templatizer_.ToWorkload();
}

}  // namespace xia::workload
