// xia::workload — workload persistence.
//
// Saved workloads use the same text format engine::ParseWorkloadText
// already reads (';'-separated statements, '#' comments, @freq=/@label=
// annotations), so a saved capture is a valid input anywhere a workload
// file is accepted (`xia_advise --workload`, shell `workload load`,
// replay). Serialization is canonical: one annotation line and one
// single-line statement per entry, deterministic frequency formatting,
// labels defaulted exactly as the parser would default them — which makes
// Save(Load(Save(w))) byte-identical to Save(w), the property the
// round-trip tests pin down.
//
// Corruption detection: serialization appends a final "# crc32=XXXXXXXX"
// line covering every preceding byte. The trailer is an ordinary comment,
// so any parser still accepts the file; loading verifies it when present
// (mismatch -> kDataLoss) and accepts trailer-less files (hand-written or
// pre-CRC) unverified.
//
// Limitation (inherited from the text format): statement text must not
// contain '#' outside string literals — '#' starts a comment. The XIA
// query language never produces one; inserted XML documents could, and
// are rejected at save time rather than silently corrupted at load time.

#ifndef XIA_WORKLOAD_WORKLOAD_IO_H_
#define XIA_WORKLOAD_WORKLOAD_IO_H_

#include <string>

#include "engine/query.h"
#include "util/status.h"

namespace xia::workload {

/// Renders `workload` in the canonical on-disk text form.
Result<std::string> SerializeWorkload(const engine::Workload& workload);

/// Parses the on-disk text form, verifying the CRC trailer when present.
Result<engine::Workload> DeserializeWorkload(const std::string& text);

/// Serializes `workload` and writes it to `path`. Fails up front if the
/// parent directory does not exist.
Status SaveWorkloadToFile(const engine::Workload& workload,
                          const std::string& path);

/// Reads and parses the workload at `path`.
Result<engine::Workload> LoadWorkloadFromFile(const std::string& path);

}  // namespace xia::workload

#endif  // XIA_WORKLOAD_WORKLOAD_IO_H_
