// xia::workload — query templatization.
//
// A million raw captured queries are useless to the advisor as-is: the
// search cost grows with workload size, and queries that differ only in
// their constants ("Symbol = 'SYM000017'" vs "Symbol = 'SYM000042'")
// exercise the same indexes. The Templatizer compresses the raw stream
// into weighted templates: each statement is normalized (the same
// engine::Normalize rewrite the optimizer front-end uses, so a where
// clause and an equivalent inline predicate land on one template),
// constants are replaced by typed markers, and statements with equal
// masked shapes are deduplicated into one template carrying
//   - a representative statement (the first concrete instance seen, with
//     its real constants — the advisor's selectivity estimation needs a
//     concrete literal to cost),
//   - the accumulated weight (becomes engine::Statement::frequency), and
//   - the observed execution cost, when captured.
//
// ToWorkload() renders the templates back as a small weighted
// engine::Workload, which is exactly what Advisor::Recommend consumes.
//
// Not thread-safe: the online advisor owns one Templatizer and feeds it
// from its drain loop under its own lock.

#ifndef XIA_WORKLOAD_TEMPLATIZER_H_
#define XIA_WORKLOAD_TEMPLATIZER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/query.h"
#include "workload/capture.h"

namespace xia::workload {

/// One deduplicated template.
struct TemplateInfo {
  /// The masked shape key the template dedupes on.
  std::string key;
  /// First concrete statement observed for this shape.
  engine::Statement representative;
  /// Number of raw statements folded into this template.
  uint64_t count = 0;
  /// Accumulated weight (1 per captured execution; a statement's own
  /// frequency when added from a parsed workload).
  double weight = 0;
  /// Accumulated observed wall seconds across captured executions.
  double total_seconds = 0;
};

/// The shape key of `statement`: kind, collection, normalized path and
/// returns, with every comparison constant replaced by a typed marker
/// ("?s" / "?n"). Statements with equal keys are duplicates up to
/// constants. Insert documents are masked entirely (every insert into a
/// collection is one template).
std::string TemplateKey(const engine::Statement& statement);

/// Deduplicating accumulator of captured statements.
class Templatizer {
 public:
  /// Folds one statement in with the given weight and observed cost.
  /// Returns true if it opened a new template (first time this shape was
  /// seen).
  bool Add(const engine::Statement& statement, double weight = 1.0,
           double observed_seconds = 0);

  /// Folds a drained capture batch in (weight 1 per entry). Returns the
  /// number of new templates opened.
  size_t AddBatch(const std::vector<CapturedQuery>& batch);

  /// Folds a parsed workload in, weighting each statement by its own
  /// frequency. Returns the number of new templates opened.
  size_t AddWorkload(const engine::Workload& workload);

  /// Templates in first-seen order.
  const std::vector<TemplateInfo>& templates() const { return templates_; }
  size_t template_count() const { return templates_.size(); }
  bool empty() const { return templates_.empty(); }

  /// Raw statements folded in so far.
  uint64_t raw_count() const { return raw_count_; }

  /// raw_count / template_count; 0 when empty. The compression the
  /// subsystem exists to deliver.
  double DedupRatio() const;

  /// Renders the templates as a weighted workload (frequency = weight),
  /// in first-seen order. Labels keep the representative's label when it
  /// has one, else "tmpl-<i>".
  engine::Workload ToWorkload() const;

  void Clear();

 private:
  std::vector<TemplateInfo> templates_;
  std::unordered_map<std::string, size_t> index_;  // key -> templates_ pos
  uint64_t raw_count_ = 0;
};

}  // namespace xia::workload

#endif  // XIA_WORKLOAD_TEMPLATIZER_H_
