// xia::workload — continuous online advising.
//
// OnlineAdvisor closes the loop the paper leaves to the DBA: it owns a
// background std::thread that drains the WorkloadCapture sink, folds the
// batch into its Templatizer, and reruns Advisor::Recommend over the
// accumulated weighted workload, so the recommendation tracks the live
// query stream. An advise pass triggers when either
//   - at least `min_new_queries` captures are pending (count trigger), or
//   - captures are pending and `advise_interval_seconds` elapsed since
//     the last pass (time trigger);
// the thread polls those conditions every `poll_interval_seconds`.
//
// Each pass reports *recommendation churn* — how many indexes entered and
// left the recommended configuration relative to the previous pass —
// through the xia.workload.online.* metrics; a converging workload shows
// churn decaying to zero.
//
// Threading model. Three lock levels, always acquired in this order:
//   1. mu_        — templatizer, last recommendation, pass statistics;
//                   held across a whole advise pass, so Snapshot() /
//                   AdviseNow() serialize against the background pass.
//   2. db_mutex   — optional, caller-owned; held while Recommend reads
//                   the document store and statistics. The embedding
//                   application (e.g. the shell) takes the same mutex
//                   around store mutations (load / insert / delete /
//                   update / index DDL), which is what makes online
//                   advising safe next to a live write path.
//   3. leaf mutexes — internal to WorkloadCapture, and (when advising
//      runs parallel) internal to the shared util::ThreadPool, the
//      BenefitEvaluator's cache shards and its worker-context freelist.
//      All of these are acquired and released inside a single Recommend
//      pass below db_mutex and never call back out, so they stay leaves.
// Start()/Stop() are main-thread operations; Stop() joins.
//
// Parallel advising: when AdvisorOptions::threads asks for more than one
// worker and no external pool is supplied, the constructor spins up one
// pool shared by every advise pass (instead of a per-pass pool, whose
// thread spawn/join would dominate short passes). Results are identical
// to serial passes (DESIGN §12).

#ifndef XIA_WORKLOAD_ONLINE_ADVISOR_H_
#define XIA_WORKLOAD_ONLINE_ADVISOR_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include <memory>

#include "advisor/advisor.h"
#include "engine/query.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"
#include "workload/capture.h"
#include "workload/templatizer.h"

namespace xia::workload {

/// Online advising knobs.
struct OnlineAdvisorOptions {
  /// Advise as soon as this many captures are pending.
  size_t min_new_queries = 64;
  /// ... or when any are pending and this much time passed since the
  /// last pass.
  double advise_interval_seconds = 2.0;
  /// Background trigger-poll period.
  double poll_interval_seconds = 0.02;
  /// Options for each Recommend pass.
  advisor::AdvisorOptions advisor;
  /// Retry policy: a failed Recommend pass is retried up to this many
  /// extra times within the same pass, sleeping an exponentially growing
  /// backoff between attempts. Worst-case pass latency therefore grows by
  /// backoff_initial_seconds * (multiplier^retries - 1) / (multiplier - 1).
  int max_retries = 2;
  double backoff_initial_seconds = 0.05;
  double backoff_multiplier = 2.0;
  /// Circuit breaker: after this many consecutive *passes* fail (retries
  /// exhausted each time), the breaker opens and further passes return
  /// kUnavailable without touching the advisor. After
  /// circuit_cooldown_seconds a single half-open probe pass is allowed:
  /// success closes the breaker, failure re-opens it for another cooldown.
  int circuit_breaker_failures = 5;
  double circuit_cooldown_seconds = 5.0;
  /// Durability: when set, the background thread invokes this at most
  /// once per `checkpoint_interval_seconds` to checkpoint the WAL and
  /// truncate the log. The callback must do its own locking (the shell's
  /// takes the db mutex and calls WalManager::Checkpoint); it is called
  /// with no OnlineAdvisor lock held.
  std::function<Status()> checkpoint_fn;
  double checkpoint_interval_seconds = 30.0;
};

/// Point-in-time view of the online advising state.
struct OnlineAdvisorStatus {
  bool running = false;
  /// Raw captured statements folded in so far.
  uint64_t queries_seen = 0;
  size_t template_count = 0;
  double dedup_ratio = 0;
  /// Completed advise passes (and failed ones).
  uint64_t advise_runs = 0;
  uint64_t advise_failures = 0;
  /// Within-pass retry attempts across all passes.
  uint64_t advise_retries = 0;
  /// Failed passes since the last success (resets to 0 on success).
  uint64_t consecutive_failures = 0;
  /// Circuit-breaker state: open means passes are being skipped.
  bool circuit_open = false;
  uint64_t circuit_opens = 0;
  /// ToString of the most recent pass failure; empty after a success.
  std::string last_error;
  double last_advise_seconds = 0;
  /// Churn of the most recent pass: indexes entering / leaving the
  /// recommended configuration.
  size_t last_entered = 0;
  size_t last_left = 0;
  /// Most recent successful recommendation.
  bool has_recommendation = false;
  advisor::Recommendation recommendation;
  /// WAL checkpoints triggered by the background thread (when a
  /// checkpoint_fn is configured).
  uint64_t checkpoints = 0;
  uint64_t checkpoint_failures = 0;
  /// ToString of the most recent checkpoint failure; empty after success.
  std::string last_checkpoint_error;
};

/// Drains a WorkloadCapture and keeps a recommendation current.
class OnlineAdvisor {
 public:
  /// Neither `capture` nor `advisor` is owned; both must outlive this.
  /// `db_mutex` (optional, caller-owned) is held during each Recommend —
  /// see the threading model above.
  OnlineAdvisor(WorkloadCapture* capture, advisor::IndexAdvisor* advisor,
                OnlineAdvisorOptions options = OnlineAdvisorOptions(),
                std::mutex* db_mutex = nullptr);
  ~OnlineAdvisor();

  OnlineAdvisor(const OnlineAdvisor&) = delete;
  OnlineAdvisor& operator=(const OnlineAdvisor&) = delete;

  /// Starts the background thread (and enables the capture).
  Status Start();
  /// Stops and joins the background thread (and disables the capture).
  /// Pending captures stay in the sink. Idempotent.
  void Stop();
  bool running() const;

  /// Synchronously drains the capture and runs one advise pass (even when
  /// nothing is pending, as long as templates exist). Serializes against
  /// the background thread.
  Status AdviseNow();

  OnlineAdvisorStatus Snapshot() const;

  /// The templatized workload accumulated so far.
  engine::Workload CurrentWorkload() const;

 private:
  void Loop();
  /// Drain + templatize + Recommend + churn accounting. mu_ held.
  Status DrainAndAdviseLocked();
  /// Runs checkpoint_fn if the checkpoint interval elapsed. Called from
  /// the background loop with no locks held.
  void MaybeCheckpoint();

  WorkloadCapture* const capture_;
  advisor::IndexAdvisor* const advisor_;
  /// Non-const so the constructor can point options_.advisor.pool at
  /// pool_; immutable afterwards.
  OnlineAdvisorOptions options_;
  /// Worker pool shared across advise passes; null when advising is
  /// serial or the caller supplied an external pool.
  std::unique_ptr<util::ThreadPool> pool_;
  std::mutex* const db_mutex_;

  mutable std::mutex mu_;
  Templatizer templatizer_;
  uint64_t queries_seen_ = 0;
  uint64_t advise_runs_ = 0;
  uint64_t advise_failures_ = 0;
  uint64_t advise_retries_ = 0;
  uint64_t consecutive_failures_ = 0;
  bool circuit_open_ = false;
  uint64_t circuit_opens_ = 0;
  std::string last_error_;
  Stopwatch circuit_opened_;
  double last_advise_seconds_ = 0;
  size_t last_entered_ = 0;
  size_t last_left_ = 0;
  bool has_recommendation_ = false;
  advisor::Recommendation recommendation_;
  Stopwatch since_last_advise_;
  Stopwatch since_last_checkpoint_;
  uint64_t checkpoints_ = 0;
  uint64_t checkpoint_failures_ = 0;
  std::string last_checkpoint_error_;

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  std::thread thread_;
};

}  // namespace xia::workload

#endif  // XIA_WORKLOAD_ONLINE_ADVISOR_H_
