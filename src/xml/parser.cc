#include "xml/parser.h"

#include <array>
#include <cctype>
#include <cstring>
#include <string>
#include <vector>

#include "util/string_util.h"

namespace xia::xml {

namespace {

// Table-driven character classes: the scan loops below run once per byte
// of input, and a table load beats the locale-aware <cctype> calls. The
// tables reproduce the "C" locale exactly (ASCII only).
constexpr std::array<bool, 256> MakeNameStartTable() {
  std::array<bool, 256> t{};
  for (int c = 'a'; c <= 'z'; ++c) t[static_cast<size_t>(c)] = true;
  for (int c = 'A'; c <= 'Z'; ++c) t[static_cast<size_t>(c)] = true;
  t['_'] = t[':'] = true;
  return t;
}
constexpr std::array<bool, 256> MakeNameCharTable() {
  std::array<bool, 256> t = MakeNameStartTable();
  for (int c = '0'; c <= '9'; ++c) t[static_cast<size_t>(c)] = true;
  t['-'] = t['.'] = true;
  return t;
}
constexpr std::array<bool, 256> kNameStart = MakeNameStartTable();
constexpr std::array<bool, 256> kNameChar = MakeNameCharTable();

inline bool IsSpaceByte(unsigned char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' ||
         c == '\f';
}

class ParserImpl {
 public:
  explicit ParserImpl(std::string_view text) : text_(text) {}

  Result<Document> Run() {
    SkipProlog();
    Document doc;
    // Pre-size the node arena: compact data-centric XML runs ~25-60
    // serialized bytes per node (tags + text + markup). Sizing at the
    // dense end of that range over-reserves on sparse documents by ~2x
    // for the duration of the parse, but guarantees the common case
    // appends reallocation-free — a mid-parse arena growth moves every
    // node already built, strings and all.
    doc.ReserveNodes(text_.size() / 24 + 8);
    XIA_RETURN_IF_ERROR(ParseElement(&doc, kInvalidNode));
    SkipWhitespaceAndMisc();
    if (pos_ != text_.size()) {
      return Error("trailing content after document element");
    }
    return doc;
  }

 private:
  Status Error(const std::string& why) const {
    return Status::ParseError(
        StringPrintf("xml parse error at offset %zu: %s", pos_, why.c_str()));
  }

  bool Eof() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  bool Consume(char c) {
    if (!Eof() && Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  void SkipWhitespace() {
    while (!Eof() && IsSpaceByte(static_cast<unsigned char>(Peek()))) ++pos_;
  }

  // Advances to the next occurrence of `c` (memchr, not a byte loop) and
  // returns true, or returns false at end of input with pos_ at the end.
  bool ScanTo(char c) {
    const void* hit = std::memchr(text_.data() + pos_, c, text_.size() - pos_);
    if (hit == nullptr) {
      pos_ = text_.size();
      return false;
    }
    pos_ = static_cast<size_t>(static_cast<const char*>(hit) - text_.data());
    return true;
  }

  // Skips <?...?>, <!--...-->, <!DOCTYPE...> and whitespace.
  void SkipWhitespaceAndMisc() {
    for (;;) {
      SkipWhitespace();
      if (ConsumeLiteral("<?")) {
        const size_t end = text_.find("?>", pos_);
        pos_ = (end == std::string_view::npos) ? text_.size() : end + 2;
      } else if (ConsumeLiteral("<!--")) {
        const size_t end = text_.find("-->", pos_);
        pos_ = (end == std::string_view::npos) ? text_.size() : end + 3;
      } else if (ConsumeLiteral("<!DOCTYPE")) {
        const size_t end = text_.find('>', pos_);
        pos_ = (end == std::string_view::npos) ? text_.size() : end + 1;
      } else {
        return;
      }
    }
  }

  void SkipProlog() { SkipWhitespaceAndMisc(); }

  static bool IsNameStart(char c) {
    return kNameStart[static_cast<unsigned char>(c)];
  }
  static bool IsNameChar(char c) {
    return kNameChar[static_cast<unsigned char>(c)];
  }

  // Names are returned as views into the input; they are only ever
  // compared or interned, so the parse allocates nothing per name.
  Result<std::string_view> ParseName() {
    if (Eof() || !IsNameStart(Peek())) return Error("expected name");
    const size_t start = pos_;
    while (!Eof() && IsNameChar(Peek())) ++pos_;
    return text_.substr(start, pos_ - start);
  }

  // Decodes the five predefined entities; unknown entities are kept verbatim.
  static std::string DecodeEntities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size();) {
      if (raw[i] != '&') {
        out += raw[i++];
        continue;
      }
      const size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) {
        out += raw[i++];
        continue;
      }
      const std::string_view ent = raw.substr(i + 1, semi - i - 1);
      if (ent == "lt") {
        out += '<';
      } else if (ent == "gt") {
        out += '>';
      } else if (ent == "amp") {
        out += '&';
      } else if (ent == "quot") {
        out += '"';
      } else if (ent == "apos") {
        out += '\'';
      } else if (!ent.empty() && ent[0] == '#') {
        long code = 0;
        if (ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X')) {
          code = std::strtol(std::string(ent.substr(2)).c_str(), nullptr, 16);
        } else {
          code = std::strtol(std::string(ent.substr(1)).c_str(), nullptr, 10);
        }
        if (code > 0 && code < 128) {
          out += static_cast<char>(code);
        }
      } else {
        out.append(raw.substr(i, semi - i + 1));
      }
      i = semi + 1;
    }
    return out;
  }

  Status ParseAttributes(Document* doc, NodeIndex element) {
    for (;;) {
      SkipWhitespace();
      if (Eof()) return Error("unterminated start tag");
      if (Peek() == '>' || Peek() == '/') return Status::OK();
      auto name = ParseName();
      if (!name.ok()) return name.status();
      SkipWhitespace();
      if (!Consume('=')) return Error("expected '=' in attribute");
      SkipWhitespace();
      const char quote = Eof() ? '\0' : Peek();
      if (quote != '"' && quote != '\'') {
        return Error("expected quoted attribute value");
      }
      ++pos_;
      const size_t start = pos_;
      if (!ScanTo(quote)) return Error("unterminated attribute value");
      const std::string_view raw = text_.substr(start, pos_ - start);
      ++pos_;  // closing quote
      if (raw.find('&') == std::string_view::npos) {
        doc->AddAttribute(element, *name, raw);
      } else {
        doc->AddAttribute(element, *name, DecodeEntities(raw));
      }
    }
  }

  // Parses one element (start tag, content, end tag) and attaches it under
  // `parent` (or as the root when parent == kInvalidNode).
  Status ParseElement(Document* doc, NodeIndex parent) {
    if (!Consume('<')) return Error("expected '<'");
    auto name = ParseName();
    if (!name.ok()) return name.status();
    const NodeIndex element = (parent == kInvalidNode)
                                  ? doc->AddRoot(*name)
                                  : doc->AddElement(parent, *name);
    XIA_RETURN_IF_ERROR(ParseAttributes(doc, element));
    if (ConsumeLiteral("/>")) return Status::OK();
    if (!Consume('>')) return Error("expected '>'");

    // Leaf fast path: one entity-free text run straight into the close
    // tag — the overwhelming shape in data-centric XML. The value is set
    // from the input view with no intermediate accumulator string.
    {
      const size_t run_start = pos_;
      if (!ScanTo('<')) {
        return Error("unterminated element " + std::string(*name));
      }
      if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
        const std::string_view raw =
            text_.substr(run_start, pos_ - run_start);
        if (raw.find('&') == std::string_view::npos) {
          pos_ += 2;
          auto close = ParseName();
          if (!close.ok()) return close.status();
          if (*close != *name) {
            return Error("mismatched close tag " + std::string(*close) +
                         " for " + std::string(*name));
          }
          SkipWhitespace();
          if (!Consume('>')) return Error("expected '>' after close tag");
          const std::string_view trimmed = Trim(raw);
          if (!trimmed.empty()) doc->SetValue(element, trimmed);
          return Status::OK();
        }
      }
      pos_ = run_start;  // mixed content or entities: general loop below
    }

    std::string text;
    for (;;) {
      if (Eof()) return Error("unterminated element " + std::string(*name));
      if (Peek() == '<') {
        if (ConsumeLiteral("</")) {
          auto close = ParseName();
          if (!close.ok()) return close.status();
          if (*close != *name) {
            return Error("mismatched close tag " + std::string(*close) +
                         " for " + std::string(*name));
          }
          SkipWhitespace();
          if (!Consume('>')) return Error("expected '>' after close tag");
          break;
        }
        if (ConsumeLiteral("<!--")) {
          const size_t end = text_.find("-->", pos_);
          if (end == std::string_view::npos) return Error("open comment");
          pos_ = end + 3;
          continue;
        }
        if (ConsumeLiteral("<![CDATA[")) {
          const size_t end = text_.find("]]>", pos_);
          if (end == std::string_view::npos) return Error("open CDATA");
          text.append(text_.substr(pos_, end - pos_));
          pos_ = end + 3;
          continue;
        }
        if (ConsumeLiteral("<?")) {
          const size_t end = text_.find("?>", pos_);
          if (end == std::string_view::npos) return Error("open PI");
          pos_ = end + 2;
          continue;
        }
        XIA_RETURN_IF_ERROR(ParseElement(doc, element));
      } else {
        const size_t start = pos_;
        ScanTo('<');
        const std::string_view raw = text_.substr(start, pos_ - start);
        // Entity-free text (the overwhelmingly common case) appends
        // without the DecodeEntities temporary. Leading whitespace-only
        // runs — the indentation between child elements — would be
        // trimmed away at the end anyway, so don't accumulate them.
        if (raw.find('&') == std::string_view::npos) {
          if (!text.empty() || !Trim(raw).empty()) text.append(raw);
        } else {
          text += DecodeEntities(raw);
        }
      }
    }
    const std::string_view trimmed = Trim(text);
    if (!trimmed.empty()) {
      // Trim in place (the view aliases `text`) and move the buffer into
      // the node instead of copying it.
      text.erase(static_cast<size_t>(trimmed.end() - text.data()));
      text.erase(0, static_cast<size_t>(trimmed.begin() - text.data()));
      doc->SetValue(element, std::move(text));
    }
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Document> Parse(std::string_view text) {
  return ParserImpl(text).Run();
}

}  // namespace xia::xml
