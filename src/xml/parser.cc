#include "xml/parser.h"

#include <cctype>
#include <string>
#include <vector>

#include "util/string_util.h"

namespace xia::xml {

namespace {

class ParserImpl {
 public:
  explicit ParserImpl(std::string_view text) : text_(text) {}

  Result<Document> Run() {
    SkipProlog();
    Document doc;
    XIA_RETURN_IF_ERROR(ParseElement(&doc, kInvalidNode));
    SkipWhitespaceAndMisc();
    if (pos_ != text_.size()) {
      return Error("trailing content after document element");
    }
    return doc;
  }

 private:
  Status Error(const std::string& why) const {
    return Status::ParseError(
        StringPrintf("xml parse error at offset %zu: %s", pos_, why.c_str()));
  }

  bool Eof() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  bool Consume(char c) {
    if (!Eof() && Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  void SkipWhitespace() {
    while (!Eof() && std::isspace(static_cast<unsigned char>(Peek()))) ++pos_;
  }

  // Skips <?...?>, <!--...-->, <!DOCTYPE...> and whitespace.
  void SkipWhitespaceAndMisc() {
    for (;;) {
      SkipWhitespace();
      if (ConsumeLiteral("<?")) {
        const size_t end = text_.find("?>", pos_);
        pos_ = (end == std::string_view::npos) ? text_.size() : end + 2;
      } else if (ConsumeLiteral("<!--")) {
        const size_t end = text_.find("-->", pos_);
        pos_ = (end == std::string_view::npos) ? text_.size() : end + 3;
      } else if (ConsumeLiteral("<!DOCTYPE")) {
        const size_t end = text_.find('>', pos_);
        pos_ = (end == std::string_view::npos) ? text_.size() : end + 1;
      } else {
        return;
      }
    }
  }

  void SkipProlog() { SkipWhitespaceAndMisc(); }

  static bool IsNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  }
  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':' || c == '-' || c == '.';
  }

  Result<std::string> ParseName() {
    if (Eof() || !IsNameStart(Peek())) return Error("expected name");
    const size_t start = pos_;
    while (!Eof() && IsNameChar(Peek())) ++pos_;
    return std::string(text_.substr(start, pos_ - start));
  }

  // Decodes the five predefined entities; unknown entities are kept verbatim.
  static std::string DecodeEntities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size();) {
      if (raw[i] != '&') {
        out += raw[i++];
        continue;
      }
      const size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) {
        out += raw[i++];
        continue;
      }
      const std::string_view ent = raw.substr(i + 1, semi - i - 1);
      if (ent == "lt") {
        out += '<';
      } else if (ent == "gt") {
        out += '>';
      } else if (ent == "amp") {
        out += '&';
      } else if (ent == "quot") {
        out += '"';
      } else if (ent == "apos") {
        out += '\'';
      } else if (!ent.empty() && ent[0] == '#') {
        long code = 0;
        if (ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X')) {
          code = std::strtol(std::string(ent.substr(2)).c_str(), nullptr, 16);
        } else {
          code = std::strtol(std::string(ent.substr(1)).c_str(), nullptr, 10);
        }
        if (code > 0 && code < 128) {
          out += static_cast<char>(code);
        }
      } else {
        out.append(raw.substr(i, semi - i + 1));
      }
      i = semi + 1;
    }
    return out;
  }

  Status ParseAttributes(Document* doc, NodeIndex element) {
    for (;;) {
      SkipWhitespace();
      if (Eof()) return Error("unterminated start tag");
      if (Peek() == '>' || Peek() == '/') return Status::OK();
      auto name = ParseName();
      if (!name.ok()) return name.status();
      SkipWhitespace();
      if (!Consume('=')) return Error("expected '=' in attribute");
      SkipWhitespace();
      const char quote = Eof() ? '\0' : Peek();
      if (quote != '"' && quote != '\'') {
        return Error("expected quoted attribute value");
      }
      ++pos_;
      const size_t start = pos_;
      while (!Eof() && Peek() != quote) ++pos_;
      if (Eof()) return Error("unterminated attribute value");
      const std::string value =
          DecodeEntities(text_.substr(start, pos_ - start));
      ++pos_;  // closing quote
      doc->AddAttribute(element, *name, value);
    }
  }

  // Parses one element (start tag, content, end tag) and attaches it under
  // `parent` (or as the root when parent == kInvalidNode).
  Status ParseElement(Document* doc, NodeIndex parent) {
    if (!Consume('<')) return Error("expected '<'");
    auto name = ParseName();
    if (!name.ok()) return name.status();
    const NodeIndex element = (parent == kInvalidNode)
                                  ? doc->AddRoot(*name)
                                  : doc->AddElement(parent, *name);
    XIA_RETURN_IF_ERROR(ParseAttributes(doc, element));
    if (ConsumeLiteral("/>")) return Status::OK();
    if (!Consume('>')) return Error("expected '>'");

    std::string text;
    for (;;) {
      if (Eof()) return Error("unterminated element " + *name);
      if (Peek() == '<') {
        if (ConsumeLiteral("</")) {
          auto close = ParseName();
          if (!close.ok()) return close.status();
          if (*close != *name) {
            return Error("mismatched close tag " + *close + " for " + *name);
          }
          SkipWhitespace();
          if (!Consume('>')) return Error("expected '>' after close tag");
          break;
        }
        if (ConsumeLiteral("<!--")) {
          const size_t end = text_.find("-->", pos_);
          if (end == std::string_view::npos) return Error("open comment");
          pos_ = end + 3;
          continue;
        }
        if (ConsumeLiteral("<![CDATA[")) {
          const size_t end = text_.find("]]>", pos_);
          if (end == std::string_view::npos) return Error("open CDATA");
          text.append(text_.substr(pos_, end - pos_));
          pos_ = end + 3;
          continue;
        }
        if (ConsumeLiteral("<?")) {
          const size_t end = text_.find("?>", pos_);
          if (end == std::string_view::npos) return Error("open PI");
          pos_ = end + 2;
          continue;
        }
        XIA_RETURN_IF_ERROR(ParseElement(doc, element));
      } else {
        const size_t start = pos_;
        while (!Eof() && Peek() != '<') ++pos_;
        text += DecodeEntities(text_.substr(start, pos_ - start));
      }
    }
    const std::string_view trimmed = Trim(text);
    if (!trimmed.empty()) doc->SetValue(element, trimmed);
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Document> Parse(std::string_view text) {
  return ParserImpl(text).Run();
}

}  // namespace xia::xml
