// A small non-validating XML parser sufficient for data-centric documents:
// elements, attributes, character data, entity references, comments,
// processing instructions and XML declarations (the last three are skipped).
// No DTDs, namespaces are kept as literal "ns:tag" labels.

#ifndef XIA_XML_PARSER_H_
#define XIA_XML_PARSER_H_

#include <string_view>

#include "util/status.h"
#include "xml/document.h"

namespace xia::xml {

/// Parses `text` into a Document. Returns ParseError with a byte offset and
/// reason on malformed input.
Result<Document> Parse(std::string_view text);

}  // namespace xia::xml

#endif  // XIA_XML_PARSER_H_
