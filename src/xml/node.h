// XML data model.
//
// A Document owns a flat arena of Nodes. Node indices are stable for the
// lifetime of the document, so (document id, node index) pairs — NodeRef —
// serve as the record identifiers stored in indexes, mirroring the
// (docid, nodeid) RIDs of native XML stores.

#ifndef XIA_XML_NODE_H_
#define XIA_XML_NODE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "xml/tag.h"

namespace xia::xml {

/// Kind of a node in the simplified XML data model. Data-centric XML (the
/// kind TPoX and XMark produce) is element text + attributes; we do not
/// model processing instructions or comments.
enum class NodeKind : uint8_t {
  kElement = 0,
  kAttribute = 1,
};

/// Index of a node within its document's arena.
using NodeIndex = int32_t;

/// Sentinel for "no node" (e.g. the parent of the root).
inline constexpr NodeIndex kInvalidNode = -1;

/// A single XML node. Element values hold the concatenated immediate text
/// content (mixed content is concatenated, which is sufficient for
/// data-centric documents). Attribute nodes have label "@name".
///
/// Children are threaded through the arena as an intrusive
/// first-child/next-sibling list rather than a per-node vector: a
/// document's entire structure then lives in the one node arena, so
/// building a node never heap-allocates for structure and a resident
/// document costs no per-parent vector blocks. Construction is
/// append-only, so a child is always linked at the tail (last_child
/// makes that O(1)) and document order is preserved.
struct Node {
  NodeKind kind = NodeKind::kElement;
  /// Element tag name, or "@name" for attributes. Interned: comparing two
  /// labels is a pointer compare, and a node costs no per-label allocation.
  Tag label;
  /// Text content (elements) or attribute value (attributes).
  std::string value;
  NodeIndex parent = kInvalidNode;
  NodeIndex first_child = kInvalidNode;
  NodeIndex last_child = kInvalidNode;
  NodeIndex next_sibling = kInvalidNode;

  bool is_element() const { return kind == NodeKind::kElement; }
  bool is_attribute() const { return kind == NodeKind::kAttribute; }
  bool has_children() const { return first_child != kInvalidNode; }
};

/// Identifier of a document within a DocumentStore.
using DocId = int32_t;

/// A record identifier: a node within a stored document. This is what XML
/// indexes map values to.
struct NodeRef {
  DocId doc = -1;
  NodeIndex node = kInvalidNode;

  bool operator==(const NodeRef& o) const {
    return doc == o.doc && node == o.node;
  }
  bool operator<(const NodeRef& o) const {
    if (doc != o.doc) return doc < o.doc;
    return node < o.node;
  }
};

}  // namespace xia::xml

#endif  // XIA_XML_NODE_H_
