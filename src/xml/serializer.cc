#include "xml/serializer.h"

namespace xia::xml {

std::string EscapeText(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

namespace {

void SerializeNode(const Document& doc, NodeIndex idx,
                   const SerializeOptions& options, int depth,
                   std::string* out) {
  const Node& n = doc.node(idx);
  const std::string pad =
      options.pretty ? std::string(static_cast<size_t>(depth) *
                                       static_cast<size_t>(options.indent_width),
                                   ' ')
                     : std::string();
  out->append(pad);
  out->push_back('<');
  out->append(n.label);
  // Attributes first.
  std::vector<NodeIndex> element_children;
  for (NodeIndex c : doc.children(idx)) {
    const Node& child = doc.node(c);
    if (child.is_attribute()) {
      out->push_back(' ');
      out->append(child.label.substr(1));
      out->append("=\"");
      out->append(EscapeText(child.value));
      out->push_back('"');
    } else {
      element_children.push_back(c);
    }
  }
  if (element_children.empty() && n.value.empty()) {
    out->append("/>");
    if (options.pretty) out->push_back('\n');
    return;
  }
  out->push_back('>');
  if (!n.value.empty()) out->append(EscapeText(n.value));
  if (!element_children.empty()) {
    if (options.pretty) out->push_back('\n');
    for (NodeIndex c : element_children) {
      SerializeNode(doc, c, options, depth + 1, out);
    }
    out->append(pad);
  }
  out->append("</");
  out->append(n.label);
  out->push_back('>');
  if (options.pretty) out->push_back('\n');
}

}  // namespace

std::string Serialize(const Document& doc, NodeIndex node,
                      const SerializeOptions& options) {
  std::string out;
  if (!doc.empty()) SerializeNode(doc, node, options, 0, &out);
  return out;
}

}  // namespace xia::xml
