// XML serialization (pretty-printed or compact) for documents and subtrees.

#ifndef XIA_XML_SERIALIZER_H_
#define XIA_XML_SERIALIZER_H_

#include <string>

#include "xml/document.h"

namespace xia::xml {

/// Serialization options.
struct SerializeOptions {
  bool pretty = false;  ///< Indent children; otherwise compact single line.
  int indent_width = 2;
};

/// Serializes the subtree rooted at `node` (defaults to the whole document).
std::string Serialize(const Document& doc,
                      NodeIndex node = 0,
                      const SerializeOptions& options = {});

/// Escapes XML-significant characters in character data.
std::string EscapeText(const std::string& raw);

}  // namespace xia::xml

#endif  // XIA_XML_SERIALIZER_H_
