#include "xml/document.h"

#include <cassert>

namespace xia::xml {

namespace {

// Links freshly appended node `idx` as the last child of `parent`.
// Callers must pass a nodes vector that will not reallocate between the
// child's emplacement and this call (the references alias the arena).
void LinkChild(std::vector<Node>* nodes, NodeIndex parent, NodeIndex idx) {
  Node& p = (*nodes)[static_cast<size_t>(parent)];
  if (p.first_child == kInvalidNode) {
    p.first_child = idx;
  } else {
    (*nodes)[static_cast<size_t>(p.last_child)].next_sibling = idx;
  }
  p.last_child = idx;
}

}  // namespace

NodeIndex Document::AddRoot(std::string_view label) {
  assert(nodes_.empty());
  Node n;
  n.label = label;
  nodes_.push_back(std::move(n));
  approx_bytes_ += NodeBytes(nodes_.back());
  return 0;
}

NodeIndex Document::AddElement(NodeIndex parent, std::string_view label,
                               std::string_view value) {
  return AddElement(parent, label, std::string(value));
}

NodeIndex Document::AddElement(NodeIndex parent, std::string_view label,
                               std::string&& value) {
  assert(parent >= 0 && static_cast<size_t>(parent) < nodes_.size());
  const NodeIndex idx = static_cast<NodeIndex>(nodes_.size());
  // Emplace and fill in place: a local Node pushed by move would cost a
  // 72-byte move plus a moved-from destructor per node.
  Node& n = nodes_.emplace_back();
  n.label = label;
  n.value = std::move(value);
  n.parent = parent;
  approx_bytes_ += NodeBytes(n);
  LinkChild(&nodes_, parent, idx);
  return idx;
}

NodeIndex Document::AddAttribute(NodeIndex parent, std::string_view name,
                                 std::string_view value) {
  return AddAttribute(parent, name, std::string(value));
}

NodeIndex Document::AddAttribute(NodeIndex parent, std::string_view name,
                                 std::string&& value) {
  assert(parent >= 0 && static_cast<size_t>(parent) < nodes_.size());
  // Build the "@name" spelling in one pre-sized buffer; "@" + string(name)
  // would allocate twice per attribute.
  std::string prefixed;
  prefixed.reserve(name.size() + 1);
  prefixed.push_back('@');
  prefixed.append(name);
  const NodeIndex idx = static_cast<NodeIndex>(nodes_.size());
  Node& n = nodes_.emplace_back();
  n.kind = NodeKind::kAttribute;
  n.label = prefixed;
  n.value = std::move(value);
  n.parent = parent;
  approx_bytes_ += NodeBytes(n);
  LinkChild(&nodes_, parent, idx);
  return idx;
}

void Document::SetValue(NodeIndex node, std::string_view value) {
  std::string& slot = nodes_[static_cast<size_t>(node)].value;
  approx_bytes_ += value.size() - slot.size();
  slot = std::string(value);
}

void Document::SetValue(NodeIndex node, std::string&& value) {
  std::string& slot = nodes_[static_cast<size_t>(node)].value;
  approx_bytes_ += value.size() - slot.size();
  slot = std::move(value);
}

std::vector<std::string> Document::LabelPath(NodeIndex i) const {
  std::vector<std::string> rev;
  for (NodeIndex cur = i; cur != kInvalidNode;
       cur = nodes_[static_cast<size_t>(cur)].parent) {
    rev.push_back(nodes_[static_cast<size_t>(cur)].label);
  }
  return {rev.rbegin(), rev.rend()};
}

std::string Document::LabelPathString(NodeIndex i) const {
  std::string out;
  for (const auto& label : LabelPath(i)) {
    out += '/';
    out += label;
  }
  return out;
}

int Document::Depth(NodeIndex i) const {
  int d = 0;
  for (NodeIndex cur = i; cur != kInvalidNode;
       cur = nodes_[static_cast<size_t>(cur)].parent) {
    ++d;
  }
  return d;
}

}  // namespace xia::xml
