#include "xml/document.h"

#include <cassert>

namespace xia::xml {

NodeIndex Document::AddRoot(std::string_view label) {
  assert(nodes_.empty());
  Node n;
  n.label = std::string(label);
  nodes_.push_back(std::move(n));
  return 0;
}

NodeIndex Document::AddElement(NodeIndex parent, std::string_view label,
                               std::string_view value) {
  assert(parent >= 0 && static_cast<size_t>(parent) < nodes_.size());
  Node n;
  n.label = std::string(label);
  n.value = std::string(value);
  n.parent = parent;
  const NodeIndex idx = static_cast<NodeIndex>(nodes_.size());
  nodes_.push_back(std::move(n));
  nodes_[static_cast<size_t>(parent)].children.push_back(idx);
  return idx;
}

NodeIndex Document::AddAttribute(NodeIndex parent, std::string_view name,
                                 std::string_view value) {
  assert(parent >= 0 && static_cast<size_t>(parent) < nodes_.size());
  Node n;
  n.kind = NodeKind::kAttribute;
  n.label = "@" + std::string(name);
  n.value = std::string(value);
  n.parent = parent;
  const NodeIndex idx = static_cast<NodeIndex>(nodes_.size());
  nodes_.push_back(std::move(n));
  nodes_[static_cast<size_t>(parent)].children.push_back(idx);
  return idx;
}

void Document::SetValue(NodeIndex node, std::string_view value) {
  nodes_[static_cast<size_t>(node)].value = std::string(value);
}

std::vector<std::string> Document::LabelPath(NodeIndex i) const {
  std::vector<std::string> rev;
  for (NodeIndex cur = i; cur != kInvalidNode;
       cur = nodes_[static_cast<size_t>(cur)].parent) {
    rev.push_back(nodes_[static_cast<size_t>(cur)].label);
  }
  return {rev.rbegin(), rev.rend()};
}

std::string Document::LabelPathString(NodeIndex i) const {
  std::string out;
  for (const auto& label : LabelPath(i)) {
    out += '/';
    out += label;
  }
  return out;
}

int Document::Depth(NodeIndex i) const {
  int d = 0;
  for (NodeIndex cur = i; cur != kInvalidNode;
       cur = nodes_[static_cast<size_t>(cur)].parent) {
    ++d;
  }
  return d;
}

size_t Document::ApproximateByteSize() const {
  size_t bytes = 0;
  for (const auto& n : nodes_) {
    // Tag pair + value + per-node structural overhead (pointers, offsets)
    // comparable to a native store's node record.
    bytes += 2 * n.label.size() + n.value.size() + 16;
  }
  return bytes;
}

}  // namespace xia::xml
