// In-memory XML document: a flat arena of nodes rooted at index 0.

#ifndef XIA_XML_DOCUMENT_H_
#define XIA_XML_DOCUMENT_H_

#include <string>
#include <string_view>
#include <vector>

#include "xml/node.h"

namespace xia::xml {

/// An XML document. Nodes live in a flat vector; the root element is node 0
/// once the document is non-empty. Construction is append-only, which keeps
/// NodeIndex values stable (a requirement for index RIDs).
class Document {
 public:
  Document() = default;

  /// Creates the root element. Must be the first node added.
  NodeIndex AddRoot(std::string_view label);

  /// Appends a child element under `parent` and returns its index.
  NodeIndex AddElement(NodeIndex parent, std::string_view label,
                       std::string_view value = "");

  /// Appends an attribute node under `parent`; label is stored as "@name".
  NodeIndex AddAttribute(NodeIndex parent, std::string_view name,
                         std::string_view value);

  /// Sets the text value of a node.
  void SetValue(NodeIndex node, std::string_view value);

  bool empty() const { return nodes_.empty(); }
  size_t size() const { return nodes_.size(); }
  NodeIndex root() const { return nodes_.empty() ? kInvalidNode : 0; }

  const Node& node(NodeIndex i) const { return nodes_[static_cast<size_t>(i)]; }
  Node& node(NodeIndex i) { return nodes_[static_cast<size_t>(i)]; }

  const std::vector<Node>& nodes() const { return nodes_; }

  /// Root-to-node sequence of labels, e.g. {"Security","SecInfo","Sector"}.
  std::vector<std::string> LabelPath(NodeIndex i) const;

  /// Same but rendered as "/Security/SecInfo/Sector".
  std::string LabelPathString(NodeIndex i) const;

  /// Depth of the node (root = 1).
  int Depth(NodeIndex i) const;

  /// Total bytes of labels + values; used by the storage layer to model
  /// page consumption.
  size_t ApproximateByteSize() const;

 private:
  std::vector<Node> nodes_;
};

}  // namespace xia::xml

#endif  // XIA_XML_DOCUMENT_H_
