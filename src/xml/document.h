// In-memory XML document: a flat arena of nodes rooted at index 0.

#ifndef XIA_XML_DOCUMENT_H_
#define XIA_XML_DOCUMENT_H_

#include <string>
#include <string_view>
#include <vector>

#include "xml/node.h"

namespace xia::xml {

/// An XML document. Nodes live in a flat vector; the root element is node 0
/// once the document is non-empty. Construction is append-only, which keeps
/// NodeIndex values stable (a requirement for index RIDs).
class Document {
 public:
  Document() = default;

  /// Pre-sizes the node arena (e.g. from a serialized-byte heuristic) so a
  /// parse appends without reallocating the vector log2(n) times.
  void ReserveNodes(size_t n) { nodes_.reserve(n); }

  /// Creates the root element. Must be the first node added.
  NodeIndex AddRoot(std::string_view label);

  /// Appends a child element under `parent` and returns its index. The
  /// rvalue overload moves the value string into the node; the const char*
  /// overload disambiguates literal callers.
  NodeIndex AddElement(NodeIndex parent, std::string_view label,
                       std::string_view value = "");
  NodeIndex AddElement(NodeIndex parent, std::string_view label,
                       std::string&& value);
  NodeIndex AddElement(NodeIndex parent, std::string_view label,
                       const char* value) {
    return AddElement(parent, label, std::string_view(value));
  }

  /// Appends an attribute node under `parent`; label is stored as "@name".
  NodeIndex AddAttribute(NodeIndex parent, std::string_view name,
                         std::string_view value);
  NodeIndex AddAttribute(NodeIndex parent, std::string_view name,
                         std::string&& value);
  NodeIndex AddAttribute(NodeIndex parent, std::string_view name,
                         const char* value) {
    return AddAttribute(parent, name, std::string_view(value));
  }

  /// Sets the text value of a node.
  void SetValue(NodeIndex node, std::string_view value);
  void SetValue(NodeIndex node, std::string&& value);
  void SetValue(NodeIndex node, const char* value) {
    SetValue(node, std::string_view(value));
  }

  bool empty() const { return nodes_.empty(); }
  size_t size() const { return nodes_.size(); }
  NodeIndex root() const { return nodes_.empty() ? kInvalidNode : 0; }

  const Node& node(NodeIndex i) const { return nodes_[static_cast<size_t>(i)]; }
  Node& node(NodeIndex i) { return nodes_[static_cast<size_t>(i)]; }

  const std::vector<Node>& nodes() const { return nodes_; }

  /// Iterable view over a node's children in document order, walking the
  /// intrusive sibling links: `for (NodeIndex c : doc.children(n))`.
  class ChildRange {
   public:
    class iterator {
     public:
      iterator(const std::vector<Node>* nodes, NodeIndex cur)
          : nodes_(nodes), cur_(cur) {}
      NodeIndex operator*() const { return cur_; }
      iterator& operator++() {
        cur_ = (*nodes_)[static_cast<size_t>(cur_)].next_sibling;
        return *this;
      }
      bool operator!=(const iterator& o) const { return cur_ != o.cur_; }
      bool operator==(const iterator& o) const { return cur_ == o.cur_; }

     private:
      const std::vector<Node>* nodes_;
      NodeIndex cur_;
    };
    ChildRange(const std::vector<Node>* nodes, NodeIndex first)
        : nodes_(nodes), first_(first) {}
    iterator begin() const { return {nodes_, first_}; }
    iterator end() const { return {nodes_, kInvalidNode}; }

   private:
    const std::vector<Node>* nodes_;
    NodeIndex first_;
  };
  ChildRange children(NodeIndex i) const {
    return {&nodes_, nodes_[static_cast<size_t>(i)].first_child};
  }

  /// Number of children of `i` (linear in the child count; convenience
  /// for tests and diagnostics, not for hot paths).
  size_t ChildCount(NodeIndex i) const {
    size_t n = 0;
    for (NodeIndex c : children(i)) {
      (void)c;
      ++n;
    }
    return n;
  }

  /// Root-to-node sequence of labels, e.g. {"Security","SecInfo","Sector"}.
  std::vector<std::string> LabelPath(NodeIndex i) const;

  /// Same but rendered as "/Security/SecInfo/Sector".
  std::string LabelPathString(NodeIndex i) const;

  /// Depth of the node (root = 1).
  int Depth(NodeIndex i) const;

  /// Total bytes of labels + values; used by the storage layer to model
  /// page consumption. Maintained incrementally by the mutators above, so
  /// reading it is O(1) — Collection::Add/Remove/Mutate call it per
  /// document operation. (Mutating nodes through the non-const node()
  /// accessor bypasses the accounting; all in-tree mutation goes through
  /// SetValue/Add*.)
  size_t ApproximateByteSize() const { return approx_bytes_; }

 private:
  /// Accounting charge for a node: tag pair + value + per-node structural
  /// overhead (pointers, offsets) comparable to a native store's node
  /// record. Labels are interned in memory but still charged — the model
  /// tracks serialized size.
  static size_t NodeBytes(const Node& n) {
    return 2 * n.label.size() + n.value.size() + 16;
  }

  std::vector<Node> nodes_;
  size_t approx_bytes_ = 0;
};

}  // namespace xia::xml

#endif  // XIA_XML_DOCUMENT_H_
