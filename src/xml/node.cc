#include "xml/node.h"

#include <ostream>

namespace xia::xml {

std::ostream& operator<<(std::ostream& os, const NodeRef& ref) {
  return os << "(doc " << ref.doc << ", node " << ref.node << ")";
}

}  // namespace xia::xml
