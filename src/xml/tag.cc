#include "xml/tag.h"

#include <array>
#include <type_traits>
#include <mutex>
#include <ostream>
#include <shared_mutex>
#include <unordered_set>

namespace xia::xml {

namespace {

// Heterogeneous string_view lookup so a pool probe never allocates on hit.
struct SvHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
  size_t operator()(const std::string& s) const {
    return std::hash<std::string_view>{}(s);
  }
};
struct SvEq {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const {
    return a == b;
  }
};

struct Pool {
  std::shared_mutex mu;
  // Node-based container: element addresses are stable across rehash.
  std::unordered_set<std::string, SvHash, SvEq> strings;
};

Pool& GlobalPool() {
  static Pool* pool = new Pool();  // never destroyed: Tags outlive main()
  return *pool;
}

}  // namespace

const std::string* Tag::EmptyString() {
  static const std::string* empty = Intern("");
  return empty;
}

namespace {

// Per-thread direct-mapped memo in front of the shared pool: data-centric
// XML reuses a tiny label vocabulary, so nearly every probe hits here and
// skips both the pool's lock and its hash-table walk. Pool pointers stay
// valid forever (interned strings are never freed), so entries need no
// invalidation — a colliding label just overwrites the slot.
// Trivially constructible on purpose: a thread_local array of a type
// with default member initializers would pay a TLS init-guard check on
// every probe; zero-initialized trivial TLS is a direct offset access.
struct MemoEntry {
  size_t hash;
  const std::string* interned;
};
static_assert(std::is_trivially_constructible_v<MemoEntry>);
constexpr size_t kMemoSlots = 256;  // power of two

}  // namespace

const std::string* Tag::Intern(std::string_view text) {
  static thread_local std::array<MemoEntry, kMemoSlots> memo;
  const size_t hash = std::hash<std::string_view>{}(text);
  MemoEntry& slot = memo[hash & (kMemoSlots - 1)];
  if (slot.interned != nullptr && slot.hash == hash &&
      *slot.interned == text) {
    return slot.interned;
  }

  Pool& pool = GlobalPool();
  const std::string* interned = nullptr;
  {
    std::shared_lock<std::shared_mutex> lock(pool.mu);
    auto it = pool.strings.find(text);
    if (it != pool.strings.end()) interned = &*it;
  }
  if (interned == nullptr) {
    std::unique_lock<std::shared_mutex> lock(pool.mu);
    auto [it, _] = pool.strings.emplace(text);
    interned = &*it;
  }
  slot = {hash, interned};
  return interned;
}

size_t Tag::PoolSize() {
  Pool& pool = GlobalPool();
  std::shared_lock<std::shared_mutex> lock(pool.mu);
  return pool.strings.size();
}

std::ostream& operator<<(std::ostream& os, const Tag& tag) {
  return os << tag.str();
}

}  // namespace xia::xml
