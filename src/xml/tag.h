// Interned tag names.
//
// XML element/attribute labels are a handful of distinct strings repeated
// millions of times (a 1 GB TPoX load has ~50 distinct tags across ~10^8
// nodes). Tag stores one pointer into a process-wide intern pool instead of
// a per-node std::string: a Node shrinks by 24 bytes, label construction
// during parse is a hash probe instead of a heap allocation, and equality
// between two Tags is a pointer compare. Interned strings are never freed —
// the pool holds the distinct tag vocabulary, which is tiny and stable.
//
// Tag converts implicitly to `const std::string&` (exactly one user-defined
// conversion, so every std::string-consuming call site keeps compiling),
// while construction *from* text is explicit — interning does a pool probe
// and should be visible at the call site.

#ifndef XIA_XML_TAG_H_
#define XIA_XML_TAG_H_

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>

namespace xia::xml {

/// An interned label. Copying is pointer-sized; comparing is pointer
/// equality (the pool guarantees equal text <=> same pointer).
class Tag {
 public:
  /// The empty tag (does not allocate).
  Tag() : s_(EmptyString()) {}

  explicit Tag(std::string_view text) : s_(Intern(text)) {}

  Tag& operator=(std::string_view text) {
    s_ = Intern(text);
    return *this;
  }

  /// The interned string; valid for the process lifetime.
  operator const std::string&() const { return *s_; }
  const std::string& str() const { return *s_; }
  std::string_view view() const { return *s_; }
  const char* c_str() const { return s_->c_str(); }

  size_t size() const { return s_->size(); }
  bool empty() const { return s_->empty(); }
  char operator[](size_t i) const { return (*s_)[i]; }
  std::string substr(size_t pos, size_t n = std::string::npos) const {
    return s_->substr(pos, n);
  }

  friend bool operator==(const Tag& a, const Tag& b) { return a.s_ == b.s_; }
  friend bool operator!=(const Tag& a, const Tag& b) { return a.s_ != b.s_; }
  friend bool operator<(const Tag& a, const Tag& b) { return *a.s_ < *b.s_; }

  // std::string's comparison/concatenation operators are templates and do
  // not deduce through Tag's conversion, so mixed-type forms are spelled
  // out here (C++20 synthesizes the reversed and != candidates).
  friend bool operator==(const Tag& a, std::string_view b) {
    return *a.s_ == b;
  }
  friend std::string operator+(const std::string& a, const Tag& b) {
    return a + *b.s_;
  }
  friend std::string operator+(const Tag& a, const std::string& b) {
    return *a.s_ + b;
  }
  friend std::string operator+(const char* a, const Tag& b) {
    return a + *b.s_;
  }
  friend std::string operator+(const Tag& a, const char* b) {
    return *a.s_ + b;
  }

  /// Number of distinct strings ever interned (for tests/metrics).
  static size_t PoolSize();

 private:
  static const std::string* EmptyString();
  static const std::string* Intern(std::string_view text);

  const std::string* s_;
};

std::ostream& operator<<(std::ostream& os, const Tag& tag);

}  // namespace xia::xml

#endif  // XIA_XML_TAG_H_
