#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "fault/fault.h"

namespace xia::net {

namespace {

Status Errno(const std::string& what) {
  return Status::Unavailable(what + ": " + std::strerror(errno));
}

/// Numeric IPv4 only (plus the "localhost" alias) — the server is a
/// loopback/LAN front door, not a resolver.
Status ResolveHost(const std::string& host, struct sockaddr_in* addr) {
  const std::string numeric = (host == "localhost") ? "127.0.0.1" : host;
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  if (inet_pton(AF_INET, numeric.c_str(), &addr->sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 host: " + host);
  }
  return Status::OK();
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_.store(other.fd_.exchange(-1));
  }
  return *this;
}

Status Socket::SendAll(std::string_view bytes) {
  XIA_FAULT_INJECT(fault::points::kNetWrite);
  const int fd = fd_.load();
  if (fd < 0) return Status::Unavailable("send on closed socket");
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<size_t> Socket::Recv(char* buf, size_t n) {
  XIA_FAULT_INJECT(fault::points::kNetRead);
  const int fd = fd_.load();
  if (fd < 0) return Status::Unavailable("recv on closed socket");
  for (;;) {
    const ssize_t got = ::recv(fd, buf, n, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    return static_cast<size_t>(got);
  }
}

Result<bool> Socket::WaitReadable(double timeout_s) {
  const int fd = fd_.load();
  if (fd < 0) return Status::Unavailable("poll on closed socket");
  const int timeout_ms =
      timeout_s <= 0 ? 0 : static_cast<int>(timeout_s * 1000);
  struct pollfd pfd = {fd, POLLIN, 0};
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    // POLLHUP/POLLERR also mean "a Recv would not block" (it returns the
    // EOF/error), which is exactly what callers need to notice.
    return rc > 0;
  }
}

void Socket::ShutdownRead() {
  const int fd = fd_.load();
  if (fd >= 0) ::shutdown(fd, SHUT_RD);
}

void Socket::ShutdownWrite() {
  const int fd = fd_.load();
  if (fd >= 0) ::shutdown(fd, SHUT_WR);
}

void Socket::Close() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) ::close(fd);
}

Result<Socket> ConnectTcp(const std::string& host, uint16_t port,
                          double timeout_s) {
  struct sockaddr_in addr;
  XIA_RETURN_IF_ERROR(ResolveHost(host, &addr));
  addr.sin_port = htons(port);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket socket(fd);

  // Non-blocking connect + poll gives a real timeout instead of the
  // kernel's multi-minute default.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) return Errno("connect");
  if (rc != 0) {
    struct pollfd pfd = {fd, POLLOUT, 0};
    const int timeout_ms =
        timeout_s <= 0 ? -1 : static_cast<int>(timeout_s * 1000);
    rc = ::poll(&pfd, 1, timeout_ms);
    if (rc == 0) return Status::DeadlineExceeded("connect timed out");
    if (rc < 0) return Errno("poll");
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      return Errno("getsockopt");
    }
    if (err != 0) {
      return Status::Unavailable(std::string("connect: ") +
                                 std::strerror(err));
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return socket;
}

Status Listener::Listen(const std::string& host, uint16_t port,
                        int backlog) {
  if (fd_ >= 0) return Status::FailedPrecondition("already listening");
  struct sockaddr_in addr;
  XIA_RETURN_IF_ERROR(ResolveHost(host, &addr));
  addr.sin_port = htons(port);

  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const Status status = Errno("bind");
    Close();
    return status;
  }
  if (::listen(fd_, backlog) != 0) {
    const Status status = Errno("listen");
    Close();
    return status;
  }
  // Resolve the actual port (meaningful when the caller asked for 0).
  struct sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<struct sockaddr*>(&bound),
                    &len) != 0) {
    const Status status = Errno("getsockname");
    Close();
    return status;
  }
  port_ = ntohs(bound.sin_port);
  if (::pipe(wake_fd_) != 0) {
    const Status status = Errno("pipe");
    Close();
    return status;
  }
  return Status::OK();
}

Result<Socket> Listener::Accept() {
  XIA_FAULT_INJECT(fault::points::kNetAccept);
  if (fd_ < 0) return Status::Cancelled("listener closed");
  for (;;) {
    struct pollfd pfds[2] = {{fd_, POLLIN, 0}, {wake_fd_[0], POLLIN, 0}};
    const int rc = ::poll(pfds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    if (pfds[1].revents != 0) return Status::Cancelled("listener shut down");
    if ((pfds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return Errno("accept");
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return Socket(fd);
  }
}

void Listener::Shutdown() {
  if (wake_fd_[1] >= 0) {
    const char byte = 1;
    // Best-effort: a full pipe already guarantees a pending wakeup.
    [[maybe_unused]] const ssize_t n = ::write(wake_fd_[1], &byte, 1);
  }
}

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  for (int& fd : wake_fd_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
}

}  // namespace xia::net
