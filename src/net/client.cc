#include "net/client.h"

#include <utility>

namespace xia::net {

Status Client::Connect(const std::string& host, uint16_t port,
                       double timeout_s) {
  if (socket_.valid()) return Status::FailedPrecondition("already connected");
  XIA_ASSIGN_OR_RETURN(socket_, ConnectTcp(host, port, timeout_s));
  reader_ = FrameReader();
  return Status::OK();
}

void Client::Close() { socket_.Close(); }

Result<Frame> Client::ReadFrame() {
  char buf[16 * 1024];
  for (;;) {
    Frame frame;
    std::string parse_error;
    const FrameReader::Next next = reader_.Poll(&frame, &parse_error);
    if (next == FrameReader::Next::kFrame) return frame;
    if (next == FrameReader::Next::kBad) {
      return Status::ParseError("corrupt response frame: " + parse_error);
    }
    XIA_ASSIGN_OR_RETURN(const size_t got, socket_.Recv(buf, sizeof(buf)));
    if (got == 0) return Status::Unavailable("server closed connection");
    reader_.Feed(std::string_view(buf, got));
  }
}

Result<std::string> Client::Call(MsgType type, std::string payload) {
  if (!socket_.valid()) return Status::FailedPrecondition("not connected");
  const uint64_t id = next_request_id_++;
  XIA_RETURN_IF_ERROR(
      socket_.SendAll(EncodeFrame(type, id, std::move(payload))));
  XIA_ASSIGN_OR_RETURN(const Frame frame, ReadFrame());
  // request_id 0 marks a session-level error (rejected connection,
  // protocol failure) that is not tied to our request but ends it anyway.
  if (frame.request_id != id && frame.request_id != 0) {
    return Status::Internal("response for wrong request id");
  }
  if (frame.type == MsgType::kError) {
    XIA_ASSIGN_OR_RETURN(const ErrorReply error,
                         DecodeErrorReply(frame.payload));
    // Remember where the server said the leader is (kReadOnly/kFenced
    // rejections), so callers can redirect the write.
    if (!error.leader_endpoint.empty()) {
      leader_hint_ = error.leader_endpoint;
    }
    return ErrorReplyToStatus(error);
  }
  if (frame.type != MsgType::kReply) {
    return Status::Internal("unexpected response frame type");
  }
  return frame.payload;
}

Result<std::string> Client::Ping(const std::string& token) {
  return Call(MsgType::kPing, token);
}

Result<ExecReply> Client::Query(const QueryRequest& request) {
  XIA_ASSIGN_OR_RETURN(const std::string payload,
                       Call(MsgType::kQuery, EncodeQueryRequest(request)));
  return DecodeExecReply(payload);
}

Result<ExecReply> Client::Mutate(const MutationRequest& request) {
  XIA_ASSIGN_OR_RETURN(
      const std::string payload,
      Call(MsgType::kMutation, EncodeMutationRequest(request)));
  return DecodeExecReply(payload);
}

Result<AdviseReply> Client::Advise(const AdviseRequest& request) {
  XIA_ASSIGN_OR_RETURN(const std::string payload,
                       Call(MsgType::kAdvise, EncodeAdviseRequest(request)));
  return DecodeAdviseReply(payload);
}

Result<TextReply> Client::Explain(const ExplainRequest& request) {
  XIA_ASSIGN_OR_RETURN(const std::string payload,
                       Call(MsgType::kExplain, EncodeExplainRequest(request)));
  return DecodeTextReply(payload);
}

Result<TextReply> Client::Metrics(MetricsFormat format) {
  MetricsRequest request;
  request.format = format;
  XIA_ASSIGN_OR_RETURN(const std::string payload,
                       Call(MsgType::kMetrics, EncodeMetricsRequest(request)));
  return DecodeTextReply(payload);
}

Result<ReplStatusReply> Client::ReplStatus() {
  XIA_ASSIGN_OR_RETURN(
      const std::string payload,
      Call(MsgType::kReplStatus,
           EncodeReplStatusRequest(ReplStatusRequest{})));
  return DecodeReplStatusReply(payload);
}

Result<PromoteReply> Client::Promote() {
  XIA_ASSIGN_OR_RETURN(
      const std::string payload,
      Call(MsgType::kPromote, EncodePromoteRequest(PromoteRequest{})));
  return DecodePromoteReply(payload);
}

Result<CreateIndexReply> Client::CreateIndex(
    const CreateIndexRequest& request) {
  XIA_ASSIGN_OR_RETURN(
      const std::string payload,
      Call(MsgType::kCreateIndex, EncodeCreateIndexRequest(request)));
  return DecodeCreateIndexReply(payload);
}

Result<TextReply> Client::Follow(const std::string& host, uint16_t port) {
  FollowRequest request;
  request.host = host;
  request.port = port;
  XIA_ASSIGN_OR_RETURN(
      const std::string payload,
      Call(MsgType::kFollow, EncodeFollowRequest(request)));
  return DecodeTextReply(payload);
}

}  // namespace xia::net
