// Thin POSIX TCP wrappers for xia::net: a connected Socket and a
// listening Listener, both returning Status instead of errno and carrying
// the net-layer fault-injection points (kNetAccept / kNetRead /
// kNetWrite) so the fault matrix can prove every socket failure surfaces
// as a clean, attributable Status.
//
// Sends use MSG_NOSIGNAL: a client that dies mid-request turns into an
// EPIPE Status on the server's response write, never a SIGPIPE — this is
// what keeps a killed client from wedging (or killing) the server.
//
// Listener::Accept blocks in poll() on the listening fd plus a self-pipe;
// Shutdown() writes the pipe, so a blocked acceptor wakes immediately and
// returns kCancelled without racing fd reuse. Hosts are numeric IPv4
// ("127.0.0.1"); "localhost" is accepted as an alias.

#ifndef XIA_NET_SOCKET_H_
#define XIA_NET_SOCKET_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace xia::net {

/// A connected TCP socket. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_.exchange(-1)) {}
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_.load() >= 0; }
  int fd() const { return fd_.load(); }

  /// Writes all of `bytes` (looping over partial writes). kUnavailable on
  /// a closed/reset peer. Fault point: xia.fault.net.write.
  Status SendAll(std::string_view bytes);

  /// Reads up to `n` bytes; 0 means orderly EOF. kUnavailable on a reset
  /// connection. Fault point: xia.fault.net.read.
  Result<size_t> Recv(char* buf, size_t n);

  /// Polls for readability (data or EOF) for up to `timeout_s` (0 = a
  /// pure non-blocking probe). True when a Recv would not block. Lets the
  /// replication streamer drain follower acks between batches without
  /// dedicating a thread to them.
  Result<bool> WaitReadable(double timeout_s);

  /// Half-close. ShutdownRead wakes this side's blocked Recv with EOF
  /// (how the server drains sessions without cutting their in-flight
  /// response); ShutdownWrite sends FIN so the *peer's* Recv sees EOF.
  void ShutdownRead();
  void ShutdownWrite();

  void Close();

 private:
  // Atomic because a draining server calls ShutdownRead from its Stop
  // thread while the owning session thread is inside Recv/SendAll (and
  // may Close on its way out). Close() is still single-owner: only the
  // thread that wins the exchange touches the fd number.
  std::atomic<int> fd_{-1};
};

/// Connects to host:port. `timeout_s` bounds the connect itself.
Result<Socket> ConnectTcp(const std::string& host, uint16_t port,
                          double timeout_s = 5.0);

/// A listening TCP socket with a self-pipe wakeup.
class Listener {
 public:
  Listener() = default;
  ~Listener() { Close(); }
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds and listens. `port` 0 picks an ephemeral port — read the real
  /// one back with port(); this is what lets parallel ctest runs never
  /// collide.
  Status Listen(const std::string& host, uint16_t port, int backlog = 128);

  /// The bound port (resolved via getsockname, so valid after Listen even
  /// for port 0).
  uint16_t port() const { return port_; }
  bool listening() const { return fd_ >= 0; }

  /// Blocks until a connection arrives (Result is the connected socket)
  /// or Shutdown() is called (kCancelled). Fault point:
  /// xia.fault.net.accept.
  Result<Socket> Accept();

  /// Wakes every blocked Accept with kCancelled. Idempotent; safe from
  /// any thread (not from signal handlers — signal handlers should write
  /// their own pipe and let a normal thread call this).
  void Shutdown();

  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
  int wake_fd_[2] = {-1, -1};  // [0] read end polled by Accept
};

}  // namespace xia::net

#endif  // XIA_NET_SOCKET_H_
