// xia::net::Server — the engine's concurrent network front door.
//
// One Server owns a full engine stack (DocumentStore, statistics, catalog,
// optimizer, executor, workload capture, optional WAL) and serves the
// framed wire protocol (net/wire.h) over TCP:
//
//   * Front end: an acceptor thread plus one session thread per
//     connection (connections are long-lived and bounded by
//     max_connections, so thread-per-connection keeps the request path
//     free of queue hops; the heavy advise work is itself parallelized
//     through xia::util::ThreadPool via AdvisorOptions.threads).
//   * Reader/writer isolation: a std::shared_mutex over the database.
//     Queries, EXPLAIN, what-if advising and metrics run under the shared
//     lock — concurrently with each other; mutations (and EXPLAIN ANALYZE
//     of a mutation, which executes it) take the exclusive lock and
//     commit through the WAL before acking. The advisor side is safe
//     under the shared lock because each advise request builds its own
//     IndexAdvisor (private scratch catalog — the same per-context
//     isolation the parallel advisor uses, DESIGN §12).
//   * Admission control: at most max_inflight_requests are dispatched at
//     once; beyond that the server answers kResourceExhausted instead of
//     queueing unboundedly. Every admitted request runs under a Deadline
//     (request budget_ms, else default_budget_ms) and the session's
//     CancelToken, so shutdown can cut long requests cooperatively.
//   * Graceful shutdown (Stop): refuse new connections, half-close every
//     idle session (their blocked reads see EOF), let in-flight requests
//     finish and send their responses within drain_timeout_s, then cancel
//     stragglers through their CancelTokens, join everything, checkpoint
//     the WAL, and close it.
//
// Lock order (extends the DESIGN §9/§12 order): db_mu_ (shared or
// exclusive) -> WAL internals. sessions_mu_ and capture/templatizer locks
// are leaves and are never held while a request executes or while
// db_mu_ is held. Session threads never take sessions_mu_ while holding
// db_mu_.
//
// Observability: xia.net.* counters/gauges/histograms — connections
// (current/total), per-type request counters and latency histograms,
// bytes in/out, protocol errors, admission rejects. With
// options.metrics_json_path set, a background thread atomically rewrites
// that file with the full metrics JSON snapshot every
// metrics_interval_s (the `metrics` request type serves the same
// snapshot over the wire).

#ifndef XIA_NET_SERVER_H_
#define XIA_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>

#include "engine/executor.h"
#include "fault/deadline.h"
#include "net/socket.h"
#include "net/wire.h"
#include "repl/applier.h"
#include "repl/hub.h"
#include "storage/catalog.h"
#include "storage/document_store.h"
#include "storage/statistics.h"
#include "tpox/tpox_data.h"
#include "tpox/xmark.h"
#include "util/status.h"
#include "wal/manager.h"
#include "workload/capture.h"
#include "workload/templatizer.h"

namespace xia::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral: the kernel picks a free port, read it back with
  /// port(). Parallel test runs should always use 0.
  uint16_t port = 0;
  /// Durable data directory (wal::WalManager layout). Empty = volatile
  /// in-memory store.
  std::string data_dir;
  /// WAL fsync policy name ("always"/"interval"/"off"); "" = default.
  std::string fsync_policy;
  /// Pre-load a demo database: "", "tpox", or "xmark". Only seeds an
  /// empty store — a recovered data dir keeps its contents.
  std::string demo;
  tpox::TpoxScale demo_tpox_scale;
  tpox::XmarkScale demo_xmark_scale;
  size_t max_connections = 64;
  /// 0 resolves to max_connections.
  size_t max_inflight_requests = 0;
  /// Default per-request wall-clock budget in ms (0 = unbounded);
  /// requests may set their own.
  double default_budget_ms = 0;
  /// How long Stop() waits for in-flight requests before cancelling them.
  double drain_timeout_s = 5.0;
  /// Periodic metrics JSON dump destination ("" = off) and cadence.
  std::string metrics_json_path;
  double metrics_interval_s = 1.0;
  /// Default worker threads for advise requests that do not pin their
  /// own (1 = serial, 0 = one per hardware thread).
  size_t advise_threads = 1;

  // ---- replication (xia::repl, DESIGN §14) ----

  /// Non-empty = run as a read replica following the leader at
  /// follow_host:follow_port. Requires data_dir (the follower's local
  /// WAL is what makes its rejoin crash-safe). Followers serve queries,
  /// EXPLAIN, advise, and metrics; mutations get kReadOnly.
  std::string follow_host;
  uint16_t follow_port = 0;
  /// Identity reported to the leader (per-follower ack tracking).
  std::string follower_id = "follower";
  /// Follower: local checkpoint cadence in applied records (0 = only at
  /// shutdown).
  size_t repl_checkpoint_every = 0;
  /// Crash-harness hook threaded into both the WAL writer and the
  /// replication applier (named kill points, see DESIGN §14).
  wal::WalTestHook repl_test_hook;

  // ---- quorum commit + failover (DESIGN §15) ----

  /// Leader: a mutation acks to its client only after this many
  /// followers have acked its LSN (0 = async replication, the PR-7
  /// behavior). The wait never downgrades silently: a quorum that does
  /// not form within quorum_timeout_ms fails the request with
  /// kUnavailable even though the mutation is locally durable.
  size_t sync_replicas = 0;
  /// Per-request quorum deadline in ms.
  double quorum_timeout_ms = 2000;
  /// How long the hub keeps a disconnected follower's ack history
  /// before pruning it (0 = forever).
  double follower_ttl_s = 0;

  /// Startup role (the runtime role can change via promote/follow).
  bool is_follower() const { return !follow_host.empty(); }
};

/// Point-in-time replication state (tests, tools, the harness).
struct ReplStatus {
  bool is_follower = false;
  /// Follower-side applier progress (zero-valued on a leader).
  repl::ApplierStats applier;
  /// Leader-side per-follower view (empty on a follower).
  std::vector<repl::FollowerInfo> followers;
  uint64_t durable_lsn = 0;
  uint64_t checkpoint_lsn = 0;
  /// Replication epoch this node is in and its barrier LSN (DESIGN §15).
  uint64_t repl_epoch = 1;
  uint64_t epoch_start_lsn = 0;
};

/// Point-in-time server accounting (tests and the shutdown summary).
struct ServerStats {
  uint64_t connections_total = 0;
  uint64_t requests_total = 0;
  uint64_t protocol_errors = 0;
  uint64_t admission_rejects = 0;
  size_t open_sessions = 0;
  size_t inflight_requests = 0;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Builds the database (demo and/or data-dir recovery), binds the
  /// listener, and spawns the acceptor. On return the server is
  /// reachable at port().
  Status Start();

  /// Graceful shutdown; see the header comment. Idempotent. Returns the
  /// first error encountered while draining/checkpointing (the server is
  /// stopped regardless).
  Status Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  uint16_t port() const { return listener_.port(); }
  const std::string& host() const { return options_.host; }

  ServerStats GetStats() const;

  /// The recovery report from opening the data dir (fresh_start for
  /// volatile servers).
  const wal::RecoveryReport& recovery() const { return recovery_; }

  /// Replication progress; safe while running.
  ReplStatus GetReplStatus() const;

  /// A deterministic digest of the full database state (snapshot bytes +
  /// name-sorted real index definitions) under the shared lock. Two
  /// nodes with equal digests hold identical data — the crash harness's
  /// convergence check.
  Result<std::string> StoreDigest();

  /// Forces a WAL checkpoint now (exclusive lock). Leaders use this to
  /// move the checkpoint horizon so joining followers exercise the
  /// snapshot-transfer path.
  Status CheckpointNow();

  /// Current role (runtime — promote/follow can change it while the
  /// server runs; options().is_follower() is only the startup role).
  bool IsFollowerNow() const {
    return follower_mode_.load(std::memory_order_acquire);
  }

  /// Promotion (DESIGN §15): stops the applier, bumps the replication
  /// epoch (writing the kEpochBarrier record), and starts accepting
  /// writes. Idempotent on a node that is already the leader (returns
  /// the current epoch without bumping). Requires a durable data dir.
  Status Promote(uint64_t* epoch, uint64_t* barrier_lsn);

  /// (Re)join as a follower of `host:port` at runtime: demotes a
  /// deposed leader (in-flight streams fence themselves off) and starts
  /// the applier, whose first kReplHello handles divergence truncation.
  Status Follow(const std::string& host, uint16_t port);

 private:
  struct Session {
    uint64_t id = 0;
    Socket socket;
    std::thread thread;
    /// True while a request is being executed (not while blocked in
    /// recv); drain waits for these.
    std::atomic<bool> in_request{false};
    /// Cancelled by Stop() once the drain deadline passes.
    fault::CancelToken cancel;
    std::atomic<bool> done{false};
  };

  Status InitDatabase();
  void AcceptLoop();
  void SessionLoop(Session* session);
  /// Reaps finished sessions (joins their threads). Called from the
  /// acceptor between connections and from Stop.
  void ReapSessionsLocked();

  /// Dispatches one verified frame; returns the encoded response frame.
  std::string HandleFrame(Session* session, const Frame& frame);

  /// Turns the session into a leader->follower replication stream; runs
  /// until disconnect/stop. Returns an encoded error frame instead when
  /// the subscribe is rejected (follower, no WAL, bad payload).
  std::string HandleReplSubscribe(Session* session, const Frame& frame);

  Result<std::string> HandlePing(Session* session, const Frame& frame,
                                 const fault::Deadline& deadline);
  Result<std::string> HandleQuery(Session* session, const Frame& frame,
                                  const fault::Deadline& deadline);
  Result<std::string> HandleMutation(Session* session, const Frame& frame,
                                     const fault::Deadline& deadline);
  Result<std::string> HandleAdvise(Session* session, const Frame& frame,
                                   const fault::Deadline& deadline);
  Result<std::string> HandleExplain(Session* session, const Frame& frame,
                                    const fault::Deadline& deadline);
  Result<std::string> HandleCreateIndex(Session* session, const Frame& frame);
  Result<std::string> HandleMetrics(const Frame& frame);
  Result<std::string> HandleReplStatus(const Frame& frame);
  Result<std::string> HandlePromote(const Frame& frame);
  Result<std::string> HandleFollow(const Frame& frame);

  /// Where this node believes the current leader is ("host:port"; empty
  /// when unknown) — attached to kReadOnly/kFenced error replies.
  std::string LeaderEndpointHint() const;
  /// Starts the applier against the current leader endpoint (role_mu_
  /// must be held).
  void StartApplierLocked();

  /// Resolves a request budget (else the server default) to a Deadline.
  fault::Deadline MakeDeadline(double budget_ms) const;
  void UpdateServerGauges();
  void MetricsDumpLoop();

  const ServerOptions options_;
  const size_t max_inflight_;

  // ---- database (guarded by db_mu_; see the lock-order note above) ----
  std::shared_mutex db_mu_;
  storage::DocumentStore store_;
  storage::StatisticsCatalog statistics_;
  storage::Catalog catalog_;
  engine::Executor executor_;
  std::unique_ptr<wal::WalManager> wal_;
  wal::RecoveryReport recovery_;

  // ---- replication ----
  /// mutable: every hub call (reads included) prunes expired
  /// disconnected followers, which is bookkeeping, not observable
  /// state change — const status queries stay const.
  mutable repl::ReplHub repl_hub_;
  /// Runtime role: true while this node applies a leader's stream.
  /// Startup value comes from options_.is_follower(); promote/follow
  /// flip it. Streams watch it as their demotion signal.
  std::atomic<bool> follower_mode_{false};
  /// Guards applier_ swaps and the leader endpoint below. Lock order:
  /// role_mu_ -> db_mu_ (Promote holds role_mu_ across the epoch bump);
  /// request handlers never take role_mu_ while holding db_mu_.
  mutable std::mutex role_mu_;
  std::unique_ptr<repl::Applier> applier_;  // guarded by role_mu_
  std::string leader_host_;                 // guarded by role_mu_
  uint16_t leader_port_ = 0;                // guarded by role_mu_

  /// Thread-safe capture sink fed by the executor; advise-on-captured
  /// folds drained batches into templates_ under tmpl_mu_ (leaf lock).
  workload::WorkloadCapture capture_;
  std::mutex tmpl_mu_;
  workload::Templatizer templates_;

  // ---- front end ----
  Listener listener_;
  std::thread acceptor_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::mutex sessions_mu_;
  std::list<std::unique_ptr<Session>> sessions_;
  uint64_t next_session_id_ = 1;

  std::atomic<uint64_t> connections_total_{0};
  std::atomic<uint64_t> requests_total_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> admission_rejects_{0};
  std::atomic<size_t> open_sessions_{0};
  std::atomic<size_t> inflight_{0};

  // ---- metrics dump thread ----
  std::thread metrics_dumper_;
  std::mutex metrics_mu_;
  std::condition_variable metrics_cv_;
  bool metrics_stop_ = false;
};

}  // namespace xia::net

#endif  // XIA_NET_SERVER_H_
