// xia::net — the framed binary wire protocol between xia_server and its
// clients (DESIGN §13).
//
// Every message travels as one frame, mirroring the WAL's framing
// discipline (magic + length + CRC32, little-endian integers, u32-length-
// prefixed strings — the wal/wire.h helpers are reused directly so the
// byte conventions stay identical across the persistence and network
// formats):
//
//   off  size  field
//   0    4     magic       0x3154454e ("NET1" when read as LE bytes)
//   4    1     version     kNetVersion (1)
//   5    1     type        MsgType
//   6    2     flags       reserved, must be 0
//   8    8     request_id  client-assigned; echoed verbatim in responses
//   16   4     payload_len <= kMaxPayloadBytes
//   20   4     crc32       over the whole frame (header with this field
//                          zeroed, then the payload) — a single flipped
//                          bit anywhere in a frame is detected
//   24   ...   payload     type-specific encoding (below)
//
// Requests carry one of the six request types (ping / query / mutation /
// advise / explain / metrics); the server answers every request with
// exactly one kReply (success, payload depends on the request type) or
// kError (u8 StatusCode + message) frame carrying the same request_id.
// A frame that fails its magic/version/length checks or its CRC is a
// protocol error: the stream cannot be resynchronized, so the server
// sends a best-effort kError frame with request_id 0 and drops the
// session. Truncated frames are simply incomplete — the reader waits for
// more bytes, and a connection that closes mid-frame is dropped without
// ever dispatching the partial request (this is what makes "no partial
// mutation under corruption" structural: a mutation is parsed and
// executed only after its frame passed the CRC whole).

#ifndef XIA_NET_WIRE_H_
#define XIA_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "wal/wire.h"

namespace xia::net {

inline constexpr uint32_t kNetMagic = 0x3154454e;  // "NET1"
inline constexpr uint8_t kNetVersion = 1;
/// Fixed frame header size in bytes.
inline constexpr size_t kHeaderBytes = 24;
/// Upper bound on a frame payload; a length above this is a protocol
/// error, never an allocation request (same stance as the WAL).
inline constexpr uint32_t kMaxPayloadBytes = 16u << 20;

/// Message types. Requests are < kReply; response types live at 0x40+
/// and replication stream types at 0x50+ so IsRequestType stays a
/// comparison.
///
/// kReplSubscribe is the only request that does NOT follow the
/// one-request/one-reply shape: it flips the session into a one-way
/// stream of kReplHello / kReplSnapshot / kReplFrame frames from leader
/// to follower, with kReplAck frames flowing back. Stream frames carry
/// the sender's replication epoch in the request_id field (the stream is
/// positional, ordered by LSN, never correlated by id — the field would
/// otherwise always be 0, so reusing it stamps every frame with its
/// epoch at zero format cost; DESIGN §15).
enum class MsgType : uint8_t {
  kPing = 1,
  kQuery = 2,
  kMutation = 3,
  kAdvise = 4,
  kExplain = 5,
  kMetrics = 6,
  kReplSubscribe = 7,
  kReplStatus = 8,
  kPromote = 9,
  kFollow = 10,
  kCreateIndex = 11,
  kReply = 0x40,
  kError = 0x41,
  kReplFrame = 0x50,
  kReplSnapshot = 0x51,
  kReplAck = 0x52,
  kReplHello = 0x53,
};

const char* MsgTypeName(MsgType type);
bool IsRequestType(uint8_t type);

/// One decoded frame.
struct Frame {
  MsgType type = MsgType::kPing;
  uint64_t request_id = 0;
  std::string payload;
};

/// Encodes a complete frame (header + CRC + payload). `payload` must be
/// within kMaxPayloadBytes (checked by the callers' encoders; asserted
/// here in debug builds).
std::string EncodeFrame(MsgType type, uint64_t request_id,
                        std::string_view payload);

/// Incremental frame decoder over a TCP byte stream. Feed() appends
/// received bytes; Poll() yields complete frames in order. A protocol
/// violation (bad magic/version/flags, oversized length, CRC mismatch)
/// is sticky: the stream cannot be trusted past it.
class FrameReader {
 public:
  enum class Next {
    kFrame,     ///< *out holds the next complete, CRC-verified frame
    kNeedMore,  ///< no complete frame buffered; feed more bytes
    kBad,       ///< protocol violation; *error says why. Sticky.
  };

  void Feed(std::string_view bytes);
  Next Poll(Frame* out, std::string* error);

  /// Bytes buffered but not yet consumed by Poll.
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  size_t pos_ = 0;
  bool bad_ = false;
  std::string bad_reason_;
};

// ---------------------------------------------------------------------------
// Payload encodings. All integers little-endian via wal/wire.h; doubles
// travel as the little-endian bytes of their IEEE-754 representation.

void PutF64(std::string* out, double v);
bool GetF64(wal::WireReader* in, double* v);

/// kQuery — a read-only statement.
struct QueryRequest {
  std::string statement;
  bool materialize_rows = false;
  uint32_t max_rows = 10;
  /// Per-request wall-clock budget in ms; 0 = the server's default.
  double budget_ms = 0;
};

/// kMutation — an insert/delete/update statement. `expected_epoch` lets
/// a client fence its write to a specific replication epoch: 0 accepts
/// whatever epoch the server is in, any other value makes the server
/// reject with kFenced unless the epochs match exactly (so a client that
/// learned the leader before a promotion cannot slip a write into the
/// wrong epoch through a still-open connection).
struct MutationRequest {
  std::string statement;
  double budget_ms = 0;
  uint64_t expected_epoch = 0;
};

/// kAdvise — what-if index advising over a workload carried in the
/// request (ParseWorkloadText format). An empty workload_text asks the
/// server to advise over its captured (templatized) workload instead.
struct AdviseRequest {
  std::string workload_text;
  double disk_budget_bytes = 10.0 * 1024 * 1024;
  /// "", "greedy", "heuristics", "topdown-lite", "topdown-full", "dp".
  std::string algorithm;
  double budget_ms = 0;
  /// Worker threads for the advise run; 0 = the server's default.
  uint32_t threads = 0;
};

/// kExplain — plan (or EXPLAIN ANALYZE) one statement.
struct ExplainRequest {
  bool analyze = false;
  std::string statement;
  double budget_ms = 0;
};

/// kMetrics — the process-wide metrics snapshot, rendered server-side.
enum class MetricsFormat : uint8_t { kJson = 0, kPrometheus = 1, kTable = 2 };
struct MetricsRequest {
  MetricsFormat format = MetricsFormat::kJson;
};

/// kReply payload for kQuery / kMutation.
struct ExecReply {
  uint64_t result_count = 0;
  uint64_t docs_examined = 0;
  uint64_t index_entries_scanned = 0;
  double wall_seconds = 0;
  std::vector<std::string> rows;
};

/// kReply payload for kAdvise.
struct AdviseReplyIndex {
  std::string ddl;
  uint64_t size_bytes = 0;
  bool is_general = false;
};
struct AdviseReply {
  std::vector<AdviseReplyIndex> indexes;
  double total_size_bytes = 0;
  double est_speedup = 1.0;
  uint64_t optimizer_calls = 0;
  bool partial = false;
};

/// kReply payload for kPing (echo), kExplain and kMetrics (rendered
/// text).
struct TextReply {
  std::string text;
};

/// kError payload: the failing StatusCode plus its message. For
/// kReadOnly / kFenced rejections the server also carries the leader
/// endpoint it believes is current ("host:port", empty when unknown) so
/// clients can redirect instead of guessing. The field is encoded only
/// when non-empty — old decoders never see it, and the decoder accepts
/// both forms.
struct ErrorReply {
  StatusCode code = StatusCode::kInternal;
  std::string message;
  std::string leader_endpoint;
};

// ---- replication (xia::repl, DESIGN §14) ----

/// kReplSubscribe — a follower asks the leader to stream committed WAL
/// records starting at `start_lsn`. When the leader's log no longer
/// reaches back that far it answers with a kReplSnapshot first. `epoch`
/// is the highest replication epoch the follower has witnessed: a leader
/// whose own epoch is lower rejects the subscribe with kFenced (it has
/// been deposed and does not know it yet) instead of streaming stale
/// history.
struct ReplSubscribeRequest {
  std::string follower_id;
  uint64_t start_lsn = 1;
  uint64_t epoch = 0;
};

/// kReplHello — first frame of every replication stream: announces the
/// leader's current epoch and the LSN of the barrier that opened it
/// (0 for the initial epoch). A rejoining deposed leader compares this
/// against its own log to find the divergence point before accepting any
/// frames (DESIGN §15).
struct ReplHelloPayload {
  uint64_t leader_epoch = 1;
  uint64_t epoch_start_lsn = 0;
};

/// kReplFrame carries exactly one encoded WAL record (wal::EncodeRecord
/// bytes, LSN embedded) as its payload — no extra wrapper, so the record
/// CRC story stays the WAL's own. No codec needed.

/// kReplSnapshot — a checkpoint image transferred whole (file bytes,
/// validated on the follower before anything is touched). Carries the
/// leader's epoch state at the checkpoint so the installer adopts it
/// along with the LSN space; the epoch fields are encoded only when
/// repl_epoch > 1 (back-compat with PR-7 peers, which are epoch 1 by
/// definition).
struct ReplSnapshotPayload {
  uint64_t checkpoint_lsn = 0;
  bool has_snapshot = false;
  bool has_catalog = false;
  std::string snapshot_bytes;
  std::string catalog_bytes;
  uint64_t repl_epoch = 1;
  uint64_t epoch_start_lsn = 0;
};

/// kReplAck — follower reports its highest contiguously applied LSN.
struct ReplAckPayload {
  uint64_t acked_lsn = 0;
};

// ---- failover / admin (DESIGN §15) ----

/// kReplStatus — replication role/progress introspection, answered by
/// leaders and followers alike (this is how `xia_admin promote` picks
/// the most-caught-up follower).
struct ReplStatusRequest {};

struct ReplStatusFollower {
  std::string follower_id;
  std::string remote;
  uint64_t acked_lsn = 0;
  bool connected = false;
};

struct ReplStatusReply {
  /// "leader" or "follower".
  std::string role;
  uint64_t repl_epoch = 1;
  uint64_t epoch_start_lsn = 0;
  uint64_t durable_lsn = 0;
  uint64_t checkpoint_lsn = 0;
  /// Follower: highest contiguously applied LSN. Leader: 0.
  uint64_t applied_lsn = 0;
  /// Follower: the leader endpoint it follows. Leader: its own endpoint.
  std::string leader_endpoint;
  /// Leader only: per-follower stream progress.
  std::vector<ReplStatusFollower> followers;
};

/// kPromote — orders a follower to become the leader: bump the epoch,
/// write the barrier, start accepting writes. Reply carries the new
/// epoch and the barrier LSN that opened it.
struct PromoteRequest {};
struct PromoteReply {
  uint64_t epoch = 0;
  uint64_t barrier_lsn = 0;
};

/// kFollow — orders a node to (re)join as a follower of `host:port`
/// (the deposed-leader rejoin path; also flips a fresh node into
/// follower mode at runtime).
struct FollowRequest {
  std::string host;
  uint16_t port = 0;
};

/// kCreateIndex — DDL over the wire: create a real or virtual index.
/// `online` selects the non-blocking build (DESIGN §16): the server scans
/// under shared locks while a side log captures concurrent mutations,
/// and only the final swap takes the exclusive lock. Offline (default)
/// builds under the exclusive lock like any mutation.
struct CreateIndexRequest {
  std::string name;
  std::string collection;
  /// Linear XPath pattern text, e.g. "/Security/Symbol".
  std::string pattern;
  /// xpath::ValueType as u8 (0 = string, 1 = numeric).
  uint8_t value_type = 0;
  bool structural = false;
  bool is_virtual = false;
  bool online = false;
};

/// kReply payload for kCreateIndex.
struct CreateIndexReply {
  uint64_t entry_count = 0;
  uint64_t size_bytes = 0;
  bool online = false;
  /// Wall-clock build time; for online builds stall_seconds is the part
  /// spent holding the exclusive lock and delta_ops the side-log records
  /// replayed into the new index.
  double build_seconds = 0;
  double stall_seconds = 0;
  uint64_t delta_ops = 0;
};

std::string EncodeQueryRequest(const QueryRequest& req);
Result<QueryRequest> DecodeQueryRequest(std::string_view payload);

std::string EncodeMutationRequest(const MutationRequest& req);
Result<MutationRequest> DecodeMutationRequest(std::string_view payload);

std::string EncodeAdviseRequest(const AdviseRequest& req);
Result<AdviseRequest> DecodeAdviseRequest(std::string_view payload);

std::string EncodeExplainRequest(const ExplainRequest& req);
Result<ExplainRequest> DecodeExplainRequest(std::string_view payload);

std::string EncodeMetricsRequest(const MetricsRequest& req);
Result<MetricsRequest> DecodeMetricsRequest(std::string_view payload);

std::string EncodeExecReply(const ExecReply& reply);
Result<ExecReply> DecodeExecReply(std::string_view payload);

std::string EncodeAdviseReply(const AdviseReply& reply);
Result<AdviseReply> DecodeAdviseReply(std::string_view payload);

std::string EncodeTextReply(const TextReply& reply);
Result<TextReply> DecodeTextReply(std::string_view payload);

std::string EncodeErrorReply(const ErrorReply& reply);
Result<ErrorReply> DecodeErrorReply(std::string_view payload);

std::string EncodeReplSubscribeRequest(const ReplSubscribeRequest& req);
Result<ReplSubscribeRequest> DecodeReplSubscribeRequest(
    std::string_view payload);

std::string EncodeReplHelloPayload(const ReplHelloPayload& hello);
Result<ReplHelloPayload> DecodeReplHelloPayload(std::string_view payload);

std::string EncodeReplStatusRequest(const ReplStatusRequest& req);
Result<ReplStatusRequest> DecodeReplStatusRequest(std::string_view payload);

std::string EncodeReplStatusReply(const ReplStatusReply& reply);
Result<ReplStatusReply> DecodeReplStatusReply(std::string_view payload);

std::string EncodePromoteRequest(const PromoteRequest& req);
Result<PromoteRequest> DecodePromoteRequest(std::string_view payload);

std::string EncodePromoteReply(const PromoteReply& reply);
Result<PromoteReply> DecodePromoteReply(std::string_view payload);

std::string EncodeFollowRequest(const FollowRequest& req);
Result<FollowRequest> DecodeFollowRequest(std::string_view payload);

std::string EncodeCreateIndexRequest(const CreateIndexRequest& req);
Result<CreateIndexRequest> DecodeCreateIndexRequest(std::string_view payload);

std::string EncodeCreateIndexReply(const CreateIndexReply& reply);
Result<CreateIndexReply> DecodeCreateIndexReply(std::string_view payload);

std::string EncodeReplSnapshotPayload(const ReplSnapshotPayload& snap);
Result<ReplSnapshotPayload> DecodeReplSnapshotPayload(
    std::string_view payload);

std::string EncodeReplAckPayload(const ReplAckPayload& ack);
Result<ReplAckPayload> DecodeReplAckPayload(std::string_view payload);

/// Reconstructs the Status a kError frame describes (what the client
/// library returns to its caller).
Status ErrorReplyToStatus(const ErrorReply& reply);

}  // namespace xia::net

#endif  // XIA_NET_WIRE_H_
