// xia::net::Client — a blocking, single-connection client for the framed
// wire protocol. One request at a time per client (the protocol allows
// pipelining, but every caller here is request/response); concurrency
// comes from running many clients, which is exactly what the load driver
// and bench_server_qps do.
//
// Error handling: a kError frame from the server is surfaced as the
// Status it encodes (ErrorReplyToStatus), so a server-side
// kDeadlineExceeded looks to callers exactly like a local one. Transport
// failures (connection reset, unexpected EOF, protocol corruption) are
// kUnavailable / kParseError.

#ifndef XIA_NET_CLIENT_H_
#define XIA_NET_CLIENT_H_

#include <cstdint>
#include <string>

#include "net/socket.h"
#include "net/wire.h"
#include "util/status.h"

namespace xia::net {

class Client {
 public:
  Client() = default;

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Status Connect(const std::string& host, uint16_t port,
                 double timeout_s = 5.0);
  void Close();
  bool connected() const { return socket_.valid(); }

  /// Sends `token` and expects it echoed back. "sleep=MS" asks the
  /// server to hold the request open that long (test/drain aid).
  Result<std::string> Ping(const std::string& token = "ping");

  Result<ExecReply> Query(const QueryRequest& request);
  Result<ExecReply> Mutate(const MutationRequest& request);
  Result<AdviseReply> Advise(const AdviseRequest& request);
  Result<TextReply> Explain(const ExplainRequest& request);
  Result<TextReply> Metrics(MetricsFormat format);
  Result<CreateIndexReply> CreateIndex(const CreateIndexRequest& request);

  /// Failover/admin verbs (DESIGN §15).
  Result<ReplStatusReply> ReplStatus();
  Result<PromoteReply> Promote();
  Result<TextReply> Follow(const std::string& host, uint16_t port);

  /// Leader endpoint carried by the last kReadOnly/kFenced error reply
  /// ("host:port"; empty when the server did not know). Lets callers
  /// redirect a rejected write to where the leader actually is.
  const std::string& leader_hint() const { return leader_hint_; }

  /// Escape hatch for tests: sends raw bytes as-is (no framing).
  Status SendRaw(std::string_view bytes) { return socket_.SendAll(bytes); }

  /// Escape hatch for tests: reads one frame (whatever it is).
  Result<Frame> ReadFrame();

 private:
  /// Sends one request frame and returns the matching kReply frame's
  /// payload; kError frames become their encoded Status.
  Result<std::string> Call(MsgType type, std::string payload);

  Socket socket_;
  FrameReader reader_;
  uint64_t next_request_id_ = 1;
  std::string leader_hint_;
};

}  // namespace xia::net

#endif  // XIA_NET_CLIENT_H_
