#include "net/wire.h"

#include <cassert>
#include <cstring>

#include "util/crc32.h"

namespace xia::net {

using wal::PutU32;
using wal::PutU64;
using wal::PutU8;
using wal::PutString;
using wal::WireReader;

const char* MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kPing:
      return "ping";
    case MsgType::kQuery:
      return "query";
    case MsgType::kMutation:
      return "mutation";
    case MsgType::kAdvise:
      return "advise";
    case MsgType::kExplain:
      return "explain";
    case MsgType::kMetrics:
      return "metrics";
    case MsgType::kReplSubscribe:
      return "repl_subscribe";
    case MsgType::kReplStatus:
      return "repl_status";
    case MsgType::kPromote:
      return "promote";
    case MsgType::kFollow:
      return "follow";
    case MsgType::kCreateIndex:
      return "create_index";
    case MsgType::kReply:
      return "reply";
    case MsgType::kError:
      return "error";
    case MsgType::kReplFrame:
      return "repl_frame";
    case MsgType::kReplSnapshot:
      return "repl_snapshot";
    case MsgType::kReplAck:
      return "repl_ack";
    case MsgType::kReplHello:
      return "repl_hello";
  }
  return "unknown";
}

bool IsRequestType(uint8_t type) {
  return type >= static_cast<uint8_t>(MsgType::kPing) &&
         type <= static_cast<uint8_t>(MsgType::kCreateIndex);
}

namespace {

bool IsKnownType(uint8_t type) {
  return IsRequestType(type) ||
         type == static_cast<uint8_t>(MsgType::kReply) ||
         type == static_cast<uint8_t>(MsgType::kError) ||
         type == static_cast<uint8_t>(MsgType::kReplFrame) ||
         type == static_cast<uint8_t>(MsgType::kReplSnapshot) ||
         type == static_cast<uint8_t>(MsgType::kReplAck) ||
         type == static_cast<uint8_t>(MsgType::kReplHello);
}

/// Little-endian u32 at a byte offset of an existing buffer.
void PatchU32(std::string* buf, size_t off, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    (*buf)[off + static_cast<size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

uint32_t ReadU32At(std::string_view buf, size_t off) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(
             buf[off + static_cast<size_t>(i)]))
         << (8 * i);
  }
  return v;
}

uint64_t ReadU64At(std::string_view buf, size_t off) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(
             buf[off + static_cast<size_t>(i)]))
         << (8 * i);
  }
  return v;
}

/// CRC over a frame with its crc field (bytes 20..23) treated as zero.
uint32_t FrameCrc(std::string_view frame) {
  static constexpr char kZero[4] = {0, 0, 0, 0};
  uint32_t crc = Crc32Update(0, frame.data(), 20);
  crc = Crc32Update(crc, kZero, 4);
  crc = Crc32Update(crc, frame.data() + kHeaderBytes,
                    frame.size() - kHeaderBytes);
  return crc;
}

}  // namespace

std::string EncodeFrame(MsgType type, uint64_t request_id,
                        std::string_view payload) {
  assert(payload.size() <= kMaxPayloadBytes);
  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  PutU32(&out, kNetMagic);
  PutU8(&out, kNetVersion);
  PutU8(&out, static_cast<uint8_t>(type));
  PutU8(&out, 0);  // flags lo
  PutU8(&out, 0);  // flags hi
  PutU64(&out, request_id);
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU32(&out, 0);  // crc placeholder
  out.append(payload.data(), payload.size());
  PatchU32(&out, 20, FrameCrc(out));
  return out;
}

void FrameReader::Feed(std::string_view bytes) {
  // Compact once the consumed prefix dominates, so a long-lived session
  // does not grow its buffer without bound.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(bytes.data(), bytes.size());
}

FrameReader::Next FrameReader::Poll(Frame* out, std::string* error) {
  if (bad_) {
    if (error != nullptr) *error = bad_reason_;
    return Next::kBad;
  }
  const std::string_view view = std::string_view(buf_).substr(pos_);
  if (view.size() < kHeaderBytes) return Next::kNeedMore;

  const auto bad = [&](std::string reason) {
    bad_ = true;
    bad_reason_ = std::move(reason);
    if (error != nullptr) *error = bad_reason_;
    return Next::kBad;
  };

  if (ReadU32At(view, 0) != kNetMagic) return bad("bad frame magic");
  const uint8_t version = static_cast<uint8_t>(view[4]);
  if (version != kNetVersion) {
    return bad("unsupported protocol version " + std::to_string(version));
  }
  const uint8_t type = static_cast<uint8_t>(view[5]);
  if (!IsKnownType(type)) {
    return bad("unknown message type " + std::to_string(type));
  }
  if (view[6] != 0 || view[7] != 0) return bad("nonzero reserved flags");
  const uint32_t payload_len = ReadU32At(view, 16);
  if (payload_len > kMaxPayloadBytes) {
    return bad("frame payload length " + std::to_string(payload_len) +
               " exceeds limit");
  }
  if (view.size() < kHeaderBytes + payload_len) return Next::kNeedMore;

  const std::string_view frame = view.substr(0, kHeaderBytes + payload_len);
  const uint32_t want_crc = ReadU32At(frame, 20);
  if (FrameCrc(frame) != want_crc) return bad("frame crc mismatch");

  out->type = static_cast<MsgType>(type);
  out->request_id = ReadU64At(frame, 8);
  out->payload.assign(frame.data() + kHeaderBytes, payload_len);
  pos_ += frame.size();
  return Next::kFrame;
}

// ---------------------------------------------------------------------------
// Payload codecs.

void PutF64(std::string* out, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

bool GetF64(WireReader* in, double* v) {
  uint64_t bits = 0;
  if (!in->GetU64(&bits)) return false;
  std::memcpy(v, &bits, sizeof(bits));
  return true;
}

namespace {
Status Malformed(const char* what) {
  return Status::ParseError(std::string("malformed ") + what + " payload");
}
}  // namespace

std::string EncodeQueryRequest(const QueryRequest& req) {
  std::string out;
  PutString(&out, req.statement);
  PutU8(&out, req.materialize_rows ? 1 : 0);
  PutU32(&out, req.max_rows);
  PutF64(&out, req.budget_ms);
  return out;
}

Result<QueryRequest> DecodeQueryRequest(std::string_view payload) {
  QueryRequest req;
  WireReader in{payload};
  uint8_t materialize = 0;
  if (!in.GetString(&req.statement) || !in.GetU8(&materialize) ||
      !in.GetU32(&req.max_rows) || !GetF64(&in, &req.budget_ms) ||
      !in.AtEnd()) {
    return Malformed("query request");
  }
  req.materialize_rows = materialize != 0;
  return req;
}

std::string EncodeMutationRequest(const MutationRequest& req) {
  std::string out;
  PutString(&out, req.statement);
  PutF64(&out, req.budget_ms);
  if (req.expected_epoch != 0) PutU64(&out, req.expected_epoch);
  return out;
}

Result<MutationRequest> DecodeMutationRequest(std::string_view payload) {
  MutationRequest req;
  WireReader in{payload};
  if (!in.GetString(&req.statement) || !GetF64(&in, &req.budget_ms)) {
    return Malformed("mutation request");
  }
  // Optional epoch-fence tail (absent from PR-7 clients; 0 = any epoch).
  if (!in.AtEnd()) {
    if (!in.GetU64(&req.expected_epoch) || !in.AtEnd() ||
        req.expected_epoch == 0) {
      return Malformed("mutation request");
    }
  }
  return req;
}

std::string EncodeAdviseRequest(const AdviseRequest& req) {
  std::string out;
  PutString(&out, req.workload_text);
  PutF64(&out, req.disk_budget_bytes);
  PutString(&out, req.algorithm);
  PutF64(&out, req.budget_ms);
  PutU32(&out, req.threads);
  return out;
}

Result<AdviseRequest> DecodeAdviseRequest(std::string_view payload) {
  AdviseRequest req;
  WireReader in{payload};
  if (!in.GetString(&req.workload_text) ||
      !GetF64(&in, &req.disk_budget_bytes) ||
      !in.GetString(&req.algorithm) || !GetF64(&in, &req.budget_ms) ||
      !in.GetU32(&req.threads) || !in.AtEnd()) {
    return Malformed("advise request");
  }
  return req;
}

std::string EncodeExplainRequest(const ExplainRequest& req) {
  std::string out;
  PutU8(&out, req.analyze ? 1 : 0);
  PutString(&out, req.statement);
  PutF64(&out, req.budget_ms);
  return out;
}

Result<ExplainRequest> DecodeExplainRequest(std::string_view payload) {
  ExplainRequest req;
  WireReader in{payload};
  uint8_t analyze = 0;
  if (!in.GetU8(&analyze) || !in.GetString(&req.statement) ||
      !GetF64(&in, &req.budget_ms) || !in.AtEnd()) {
    return Malformed("explain request");
  }
  req.analyze = analyze != 0;
  return req;
}

std::string EncodeMetricsRequest(const MetricsRequest& req) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(req.format));
  return out;
}

Result<MetricsRequest> DecodeMetricsRequest(std::string_view payload) {
  MetricsRequest req;
  WireReader in{payload};
  uint8_t format = 0;
  if (!in.GetU8(&format) || !in.AtEnd() ||
      format > static_cast<uint8_t>(MetricsFormat::kTable)) {
    return Malformed("metrics request");
  }
  req.format = static_cast<MetricsFormat>(format);
  return req;
}

std::string EncodeExecReply(const ExecReply& reply) {
  std::string out;
  PutU64(&out, reply.result_count);
  PutU64(&out, reply.docs_examined);
  PutU64(&out, reply.index_entries_scanned);
  PutF64(&out, reply.wall_seconds);
  PutU32(&out, static_cast<uint32_t>(reply.rows.size()));
  for (const std::string& row : reply.rows) PutString(&out, row);
  return out;
}

Result<ExecReply> DecodeExecReply(std::string_view payload) {
  ExecReply reply;
  WireReader in{payload};
  uint32_t nrows = 0;
  if (!in.GetU64(&reply.result_count) || !in.GetU64(&reply.docs_examined) ||
      !in.GetU64(&reply.index_entries_scanned) ||
      !GetF64(&in, &reply.wall_seconds) || !in.GetU32(&nrows)) {
    return Malformed("exec reply");
  }
  reply.rows.resize(nrows);
  for (uint32_t i = 0; i < nrows; ++i) {
    if (!in.GetString(&reply.rows[i])) return Malformed("exec reply");
  }
  if (!in.AtEnd()) return Malformed("exec reply");
  return reply;
}

std::string EncodeAdviseReply(const AdviseReply& reply) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(reply.indexes.size()));
  for (const AdviseReplyIndex& index : reply.indexes) {
    PutString(&out, index.ddl);
    PutU64(&out, index.size_bytes);
    PutU8(&out, index.is_general ? 1 : 0);
  }
  PutF64(&out, reply.total_size_bytes);
  PutF64(&out, reply.est_speedup);
  PutU64(&out, reply.optimizer_calls);
  PutU8(&out, reply.partial ? 1 : 0);
  return out;
}

Result<AdviseReply> DecodeAdviseReply(std::string_view payload) {
  AdviseReply reply;
  WireReader in{payload};
  uint32_t count = 0;
  if (!in.GetU32(&count)) return Malformed("advise reply");
  reply.indexes.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint8_t general = 0;
    if (!in.GetString(&reply.indexes[i].ddl) ||
        !in.GetU64(&reply.indexes[i].size_bytes) || !in.GetU8(&general)) {
      return Malformed("advise reply");
    }
    reply.indexes[i].is_general = general != 0;
  }
  uint8_t partial = 0;
  if (!GetF64(&in, &reply.total_size_bytes) ||
      !GetF64(&in, &reply.est_speedup) ||
      !in.GetU64(&reply.optimizer_calls) || !in.GetU8(&partial) ||
      !in.AtEnd()) {
    return Malformed("advise reply");
  }
  reply.partial = partial != 0;
  return reply;
}

std::string EncodeTextReply(const TextReply& reply) {
  std::string out;
  PutString(&out, reply.text);
  return out;
}

Result<TextReply> DecodeTextReply(std::string_view payload) {
  TextReply reply;
  WireReader in{payload};
  if (!in.GetString(&reply.text) || !in.AtEnd()) {
    return Malformed("text reply");
  }
  return reply;
}

std::string EncodeErrorReply(const ErrorReply& reply) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(reply.code));
  PutString(&out, reply.message);
  if (!reply.leader_endpoint.empty()) PutString(&out, reply.leader_endpoint);
  return out;
}

Result<ErrorReply> DecodeErrorReply(std::string_view payload) {
  ErrorReply reply;
  WireReader in{payload};
  uint8_t code = 0;
  if (!in.GetU8(&code) || !in.GetString(&reply.message) ||
      code > static_cast<uint8_t>(StatusCode::kFenced)) {
    return Malformed("error reply");
  }
  // Optional leader-endpoint tail (present on kReadOnly/kFenced replies
  // from servers that know where the leader is).
  if (!in.AtEnd()) {
    if (!in.GetString(&reply.leader_endpoint) || !in.AtEnd() ||
        reply.leader_endpoint.empty()) {
      return Malformed("error reply");
    }
  }
  reply.code = static_cast<StatusCode>(code);
  return reply;
}

std::string EncodeReplSubscribeRequest(const ReplSubscribeRequest& req) {
  std::string out;
  PutString(&out, req.follower_id);
  PutU64(&out, req.start_lsn);
  if (req.epoch != 0) PutU64(&out, req.epoch);
  return out;
}

Result<ReplSubscribeRequest> DecodeReplSubscribeRequest(
    std::string_view payload) {
  ReplSubscribeRequest req;
  WireReader in{payload};
  if (!in.GetString(&req.follower_id) || !in.GetU64(&req.start_lsn)) {
    return Malformed("repl subscribe request");
  }
  // Optional witnessed-epoch tail (absent from PR-7 followers = epoch
  // unknown, treated as 0 — never fences).
  if (!in.AtEnd()) {
    if (!in.GetU64(&req.epoch) || !in.AtEnd() || req.epoch == 0) {
      return Malformed("repl subscribe request");
    }
  }
  return req;
}

std::string EncodeReplHelloPayload(const ReplHelloPayload& hello) {
  std::string out;
  PutU64(&out, hello.leader_epoch);
  PutU64(&out, hello.epoch_start_lsn);
  return out;
}

Result<ReplHelloPayload> DecodeReplHelloPayload(std::string_view payload) {
  ReplHelloPayload hello;
  WireReader in{payload};
  if (!in.GetU64(&hello.leader_epoch) ||
      !in.GetU64(&hello.epoch_start_lsn) || !in.AtEnd() ||
      hello.leader_epoch == 0) {
    return Malformed("repl hello");
  }
  return hello;
}

std::string EncodeReplSnapshotPayload(const ReplSnapshotPayload& snap) {
  std::string out;
  PutU64(&out, snap.checkpoint_lsn);
  PutU8(&out, snap.has_snapshot ? 1 : 0);
  PutU8(&out, snap.has_catalog ? 1 : 0);
  PutString(&out, snap.snapshot_bytes);
  PutString(&out, snap.catalog_bytes);
  if (snap.repl_epoch > 1) {
    PutU64(&out, snap.repl_epoch);
    PutU64(&out, snap.epoch_start_lsn);
  }
  return out;
}

Result<ReplSnapshotPayload> DecodeReplSnapshotPayload(
    std::string_view payload) {
  ReplSnapshotPayload snap;
  WireReader in{payload};
  uint8_t has_snapshot = 0;
  uint8_t has_catalog = 0;
  if (!in.GetU64(&snap.checkpoint_lsn) || !in.GetU8(&has_snapshot) ||
      !in.GetU8(&has_catalog) || !in.GetString(&snap.snapshot_bytes) ||
      !in.GetString(&snap.catalog_bytes)) {
    return Malformed("repl snapshot");
  }
  // Optional epoch tail (absent from PR-7 leaders = epoch 1).
  if (!in.AtEnd()) {
    if (!in.GetU64(&snap.repl_epoch) || !in.GetU64(&snap.epoch_start_lsn) ||
        !in.AtEnd() || snap.repl_epoch < 2) {
      return Malformed("repl snapshot");
    }
  }
  snap.has_snapshot = has_snapshot != 0;
  snap.has_catalog = has_catalog != 0;
  return snap;
}

std::string EncodeReplAckPayload(const ReplAckPayload& ack) {
  std::string out;
  PutU64(&out, ack.acked_lsn);
  return out;
}

Result<ReplAckPayload> DecodeReplAckPayload(std::string_view payload) {
  ReplAckPayload ack;
  WireReader in{payload};
  if (!in.GetU64(&ack.acked_lsn) || !in.AtEnd()) {
    return Malformed("repl ack");
  }
  return ack;
}

std::string EncodeReplStatusRequest(const ReplStatusRequest&) {
  return std::string();
}

Result<ReplStatusRequest> DecodeReplStatusRequest(std::string_view payload) {
  if (!payload.empty()) return Malformed("repl status request");
  return ReplStatusRequest{};
}

std::string EncodeReplStatusReply(const ReplStatusReply& reply) {
  std::string out;
  PutString(&out, reply.role);
  PutU64(&out, reply.repl_epoch);
  PutU64(&out, reply.epoch_start_lsn);
  PutU64(&out, reply.durable_lsn);
  PutU64(&out, reply.checkpoint_lsn);
  PutU64(&out, reply.applied_lsn);
  PutString(&out, reply.leader_endpoint);
  PutU32(&out, static_cast<uint32_t>(reply.followers.size()));
  for (const ReplStatusFollower& f : reply.followers) {
    PutString(&out, f.follower_id);
    PutString(&out, f.remote);
    PutU64(&out, f.acked_lsn);
    PutU8(&out, f.connected ? 1 : 0);
  }
  return out;
}

Result<ReplStatusReply> DecodeReplStatusReply(std::string_view payload) {
  ReplStatusReply reply;
  WireReader in{payload};
  uint32_t nfollowers = 0;
  if (!in.GetString(&reply.role) || !in.GetU64(&reply.repl_epoch) ||
      !in.GetU64(&reply.epoch_start_lsn) || !in.GetU64(&reply.durable_lsn) ||
      !in.GetU64(&reply.checkpoint_lsn) || !in.GetU64(&reply.applied_lsn) ||
      !in.GetString(&reply.leader_endpoint) || !in.GetU32(&nfollowers) ||
      reply.repl_epoch == 0 ||
      (reply.role != "leader" && reply.role != "follower")) {
    return Malformed("repl status reply");
  }
  reply.followers.resize(nfollowers);
  for (uint32_t i = 0; i < nfollowers; ++i) {
    uint8_t connected = 0;
    if (!in.GetString(&reply.followers[i].follower_id) ||
        !in.GetString(&reply.followers[i].remote) ||
        !in.GetU64(&reply.followers[i].acked_lsn) || !in.GetU8(&connected)) {
      return Malformed("repl status reply");
    }
    reply.followers[i].connected = connected != 0;
  }
  if (!in.AtEnd()) return Malformed("repl status reply");
  return reply;
}

std::string EncodePromoteRequest(const PromoteRequest&) {
  return std::string();
}

Result<PromoteRequest> DecodePromoteRequest(std::string_view payload) {
  if (!payload.empty()) return Malformed("promote request");
  return PromoteRequest{};
}

std::string EncodePromoteReply(const PromoteReply& reply) {
  std::string out;
  PutU64(&out, reply.epoch);
  PutU64(&out, reply.barrier_lsn);
  return out;
}

Result<PromoteReply> DecodePromoteReply(std::string_view payload) {
  PromoteReply reply;
  WireReader in{payload};
  if (!in.GetU64(&reply.epoch) || !in.GetU64(&reply.barrier_lsn) ||
      !in.AtEnd() || reply.epoch < 2 || reply.barrier_lsn == 0) {
    return Malformed("promote reply");
  }
  return reply;
}

std::string EncodeFollowRequest(const FollowRequest& req) {
  std::string out;
  PutString(&out, req.host);
  PutU32(&out, req.port);
  return out;
}

Result<FollowRequest> DecodeFollowRequest(std::string_view payload) {
  FollowRequest req;
  WireReader in{payload};
  uint32_t port = 0;
  if (!in.GetString(&req.host) || !in.GetU32(&port) || !in.AtEnd() ||
      req.host.empty() || port == 0 || port > 0xffff) {
    return Malformed("follow request");
  }
  req.port = static_cast<uint16_t>(port);
  return req;
}

std::string EncodeCreateIndexRequest(const CreateIndexRequest& req) {
  std::string out;
  PutString(&out, req.name);
  PutString(&out, req.collection);
  PutString(&out, req.pattern);
  PutU8(&out, req.value_type);
  PutU8(&out, req.structural ? 1 : 0);
  PutU8(&out, req.is_virtual ? 1 : 0);
  PutU8(&out, req.online ? 1 : 0);
  return out;
}

Result<CreateIndexRequest> DecodeCreateIndexRequest(
    std::string_view payload) {
  CreateIndexRequest req;
  WireReader in{payload};
  uint8_t structural = 0;
  uint8_t is_virtual = 0;
  uint8_t online = 0;
  if (!in.GetString(&req.name) || !in.GetString(&req.collection) ||
      !in.GetString(&req.pattern) || !in.GetU8(&req.value_type) ||
      !in.GetU8(&structural) || !in.GetU8(&is_virtual) ||
      !in.GetU8(&online) || !in.AtEnd() || req.name.empty() ||
      req.collection.empty() || req.pattern.empty() || req.value_type > 1 ||
      structural > 1 || is_virtual > 1 || online > 1 ||
      (is_virtual && online)) {
    return Malformed("create index request");
  }
  req.structural = structural != 0;
  req.is_virtual = is_virtual != 0;
  req.online = online != 0;
  return req;
}

std::string EncodeCreateIndexReply(const CreateIndexReply& reply) {
  std::string out;
  PutU64(&out, reply.entry_count);
  PutU64(&out, reply.size_bytes);
  PutU8(&out, reply.online ? 1 : 0);
  PutF64(&out, reply.build_seconds);
  PutF64(&out, reply.stall_seconds);
  PutU64(&out, reply.delta_ops);
  return out;
}

Result<CreateIndexReply> DecodeCreateIndexReply(std::string_view payload) {
  CreateIndexReply reply;
  WireReader in{payload};
  uint8_t online = 0;
  if (!in.GetU64(&reply.entry_count) || !in.GetU64(&reply.size_bytes) ||
      !in.GetU8(&online) || !GetF64(&in, &reply.build_seconds) ||
      !GetF64(&in, &reply.stall_seconds) || !in.GetU64(&reply.delta_ops) ||
      !in.AtEnd() || online > 1) {
    return Malformed("create index reply");
  }
  reply.online = online != 0;
  return reply;
}

Status ErrorReplyToStatus(const ErrorReply& reply) {
  if (reply.code == StatusCode::kOk) {
    // An error frame must not claim success; treat as a server bug.
    return Status::Internal("error frame with ok code: " + reply.message);
  }
  return Status(reply.code, reply.message);
}

}  // namespace xia::net
