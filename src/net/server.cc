#include "net/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include <sstream>
#include <vector>

#include "advisor/advisor.h"
#include "engine/query_parser.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "optimizer/optimizer.h"
#include "repl/stream.h"
#include "storage/online_build.h"
#include "storage/snapshot.h"
#include "util/atomic_file.h"
#include "util/crc32.h"
#include "util/stopwatch.h"
#include "wal/writer.h"
#include "workload/workload_io.h"
#include "xpath/parser.h"

namespace xia::net {

namespace {

constexpr size_t kRecvChunk = 64 * 1024;
constexpr uint32_t kMaxRows = 10000;
constexpr double kMaxPingSleepMs = 10000;

Result<advisor::SearchAlgorithm> ParseAlgorithm(const std::string& name) {
  if (name.empty() || name == "topdown-full") {
    return advisor::SearchAlgorithm::kTopDownFull;
  }
  if (name == "greedy") return advisor::SearchAlgorithm::kGreedy;
  if (name == "heuristics") {
    return advisor::SearchAlgorithm::kGreedyWithHeuristics;
  }
  if (name == "topdown-lite") return advisor::SearchAlgorithm::kTopDownLite;
  if (name == "dp") return advisor::SearchAlgorithm::kDynamicProgramming;
  return Status::InvalidArgument("unknown advise algorithm: " + name);
}

void Count(const std::string& name, uint64_t delta = 1) {
  if constexpr (obs::kObsEnabled) {
    obs::MetricsRegistry::Global().GetCounter(name)->Add(delta);
  }
}

void GaugeSet(const std::string& name, double value) {
  if constexpr (obs::kObsEnabled) {
    obs::MetricsRegistry::Global().GetGauge(name)->Set(value);
  }
}

void ObserveLatency(const std::string& name, double seconds) {
  if constexpr (obs::kObsEnabled) {
    obs::MetricsRegistry::Global()
        .GetHistogram(name, obs::LatencyBuckets())
        ->Observe(seconds);
  }
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      max_inflight_(options_.max_inflight_requests > 0
                        ? options_.max_inflight_requests
                        : options_.max_connections),
      catalog_(&store_, &statistics_),
      executor_(&store_, &catalog_),
      repl_hub_(options_.follower_ttl_s) {
  executor_.set_sink(&capture_);
}

Server::~Server() {
  if (running_.load(std::memory_order_acquire)) (void)Stop();
}

Status Server::InitDatabase() {
  if (options_.is_follower() && options_.data_dir.empty()) {
    return Status::InvalidArgument(
        "a follower needs a data_dir: its local WAL is what makes "
        "rejoin crash-safe");
  }
  if (!options_.data_dir.empty()) {
    wal::WalManagerOptions wal_options;
    if (!options_.fsync_policy.empty()) {
      XIA_ASSIGN_OR_RETURN(wal_options.writer.policy,
                           wal::ParseFsyncPolicy(options_.fsync_policy));
    }
    wal_options.writer.test_hook = options_.repl_test_hook;
    wal_ = std::make_unique<wal::WalManager>(options_.data_dir, wal_options);
    XIA_ASSIGN_OR_RETURN(recovery_,
                         wal_->Open(&store_, &catalog_, &statistics_));
    executor_.set_commit_log(wal_.get());
  }
  // A follower never seeds demo data: everything it holds must come
  // from the leader, or its LSN space would conflict with the stream.
  if (!options_.demo.empty() && !options_.is_follower() &&
      store_.CollectionNames().empty()) {
    if (options_.demo == "tpox") {
      XIA_RETURN_IF_ERROR(tpox::BuildTpoxDatabase(options_.demo_tpox_scale,
                                                  &store_, &statistics_));
    } else if (options_.demo == "xmark") {
      XIA_RETURN_IF_ERROR(tpox::BuildXmarkDatabase(options_.demo_xmark_scale,
                                                   &store_, &statistics_));
    } else {
      return Status::InvalidArgument("unknown demo database: " +
                                     options_.demo);
    }
    // Fold the bulk load into a checkpoint so a restart replays zero
    // records instead of regenerating nothing (the load bypassed the
    // WAL). Log one record per collection first so the checkpoint owns
    // an LSN >= 1: a checkpoint at LSN 0 holding bulk data would be
    // invisible to a follower subscribing from LSN 1 (it asks for the
    // log tail, never the snapshot) and the replica would silently miss
    // the entire seed.
    if (wal_) {
      for (const std::string& coll : store_.CollectionNames()) {
        XIA_RETURN_IF_ERROR(wal_->LogStatsRefresh(coll));
      }
      XIA_RETURN_IF_ERROR(wal_->Checkpoint(store_, catalog_));
    }
  }
  return Status::OK();
}

Status Server::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already running");
  }
  XIA_RETURN_IF_ERROR(InitDatabase());
  XIA_RETURN_IF_ERROR(listener_.Listen(options_.host, options_.port));
  capture_.set_enabled(true);
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread(&Server::AcceptLoop, this);
  if (!options_.metrics_json_path.empty()) {
    metrics_dumper_ = std::thread(&Server::MetricsDumpLoop, this);
  }
  if (options_.is_follower()) {
    std::lock_guard<std::mutex> lock(role_mu_);
    leader_host_ = options_.follow_host;
    leader_port_ = options_.follow_port;
    follower_mode_.store(true, std::memory_order_release);
    StartApplierLocked();
  }
  return Status::OK();
}

void Server::StartApplierLocked() {
  repl::ApplierOptions applier_options;
  applier_options.leader_host = leader_host_;
  applier_options.leader_port = leader_port_;
  applier_options.follower_id = options_.follower_id;
  applier_options.checkpoint_every_records = options_.repl_checkpoint_every;
  applier_options.test_hook = options_.repl_test_hook;
  applier_ = std::make_unique<repl::Applier>(
      std::move(applier_options), wal_.get(), &db_mu_, &store_, &catalog_,
      &statistics_);
  applier_->Start();
}

void Server::AcceptLoop() {
  for (;;) {
    Result<Socket> accepted = listener_.Accept();
    if (!accepted.ok()) {
      if (accepted.status().code() == StatusCode::kCancelled) return;
      // Transient (or injected) accept failure: count it and keep
      // serving; the small sleep bounds a p=1 injected-fault spin.
      Count("xia.net.accept_errors");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    std::lock_guard<std::mutex> lock(sessions_mu_);
    ReapSessionsLocked();
    if (stopping_.load(std::memory_order_acquire)) return;
    if (open_sessions_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      admission_rejects_.fetch_add(1, std::memory_order_relaxed);
      Count("xia.net.admission_rejects");
      const ErrorReply reject{StatusCode::kResourceExhausted,
                              "too many connections", ""};
      (void)accepted->SendAll(
          EncodeFrame(MsgType::kError, 0, EncodeErrorReply(reject)));
      continue;  // accepted socket closes on scope exit
    }
    auto session = std::make_unique<Session>();
    session->id = next_session_id_++;
    session->socket = std::move(*accepted);
    Session* raw = session.get();
    connections_total_.fetch_add(1, std::memory_order_relaxed);
    open_sessions_.fetch_add(1, std::memory_order_relaxed);
    Count("xia.net.connections_total");
    GaugeSet("xia.net.open_sessions",
             static_cast<double>(open_sessions_.load()));
    session->thread = std::thread(&Server::SessionLoop, this, raw);
    sessions_.push_back(std::move(session));
  }
}

void Server::ReapSessionsLocked() {
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::SessionLoop(Session* session) {
  FrameReader reader;
  char buf[kRecvChunk];
  bool drop = false;
  while (!drop) {
    // Drain every complete frame already buffered before reading more.
    for (;;) {
      Frame frame;
      std::string parse_error;
      const FrameReader::Next next = reader.Poll(&frame, &parse_error);
      if (next == FrameReader::Next::kNeedMore) break;
      if (next == FrameReader::Next::kBad) {
        // Corrupt framing: we cannot trust byte boundaries any more, so
        // answer one attributable error frame and drop the session.
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        Count("xia.net.protocol_errors");
        const ErrorReply err{StatusCode::kParseError,
                             "protocol error: " + parse_error, ""};
        (void)session->socket.SendAll(
            EncodeFrame(MsgType::kError, 0, EncodeErrorReply(err)));
        drop = true;
        break;
      }
      if (frame.type == MsgType::kReplSubscribe) {
        // The one request that does not get a single reply: the session
        // becomes a one-way replication stream until disconnect/stop
        // (in_request stays false — drain must not wait on a stream).
        const std::string rejected = HandleReplSubscribe(session, frame);
        if (!rejected.empty()) (void)session->socket.SendAll(rejected);
        drop = true;
        break;
      }
      const std::string response = HandleFrame(session, frame);
      if (!session->socket.SendAll(response).ok()) {
        // Peer died mid-response (EPIPE, not SIGPIPE): just drop.
        drop = true;
        break;
      }
      Count("xia.net.bytes_written", response.size());
    }
    if (drop) break;
    if (stopping_.load(std::memory_order_acquire)) break;
    const Result<size_t> got = session->socket.Recv(buf, sizeof(buf));
    if (!got.ok() || *got == 0) break;
    Count("xia.net.bytes_read", *got);
    reader.Feed(std::string_view(buf, *got));
  }
  session->socket.Close();
  open_sessions_.fetch_sub(1, std::memory_order_relaxed);
  GaugeSet("xia.net.open_sessions",
           static_cast<double>(open_sessions_.load()));
  session->done.store(true, std::memory_order_release);
}

std::string Server::HandleFrame(Session* session, const Frame& frame) {
  const uint8_t raw_type = static_cast<uint8_t>(frame.type);
  if (!IsRequestType(raw_type)) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    Count("xia.net.protocol_errors");
    const ErrorReply err{StatusCode::kInvalidArgument,
                         "frame type is not a request", ""};
    return EncodeFrame(MsgType::kError, frame.request_id,
                       EncodeErrorReply(err));
  }

  // Admission: bound the number of concurrently executing requests; the
  // rest get a clean kResourceExhausted instead of an unbounded queue.
  if (inflight_.fetch_add(1, std::memory_order_acq_rel) >= max_inflight_) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    admission_rejects_.fetch_add(1, std::memory_order_relaxed);
    Count("xia.net.admission_rejects");
    const ErrorReply err{StatusCode::kResourceExhausted,
                         "too many in-flight requests", ""};
    return EncodeFrame(MsgType::kError, frame.request_id,
                       EncodeErrorReply(err));
  }
  session->in_request.store(true, std::memory_order_release);
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  GaugeSet("xia.net.inflight_requests",
           static_cast<double>(inflight_.load()));

  Stopwatch timer;
  Result<std::string> payload = Status::Internal("unhandled request type");
  switch (frame.type) {
    case MsgType::kPing:
      payload = HandlePing(session, frame, MakeDeadline(0));
      break;
    case MsgType::kQuery:
      payload = HandleQuery(session, frame, fault::Deadline::Infinite());
      break;
    case MsgType::kMutation:
      payload = HandleMutation(session, frame, fault::Deadline::Infinite());
      break;
    case MsgType::kAdvise:
      payload = HandleAdvise(session, frame, fault::Deadline::Infinite());
      break;
    case MsgType::kExplain:
      payload = HandleExplain(session, frame, fault::Deadline::Infinite());
      break;
    case MsgType::kMetrics:
      payload = HandleMetrics(frame);
      break;
    case MsgType::kReplStatus:
      payload = HandleReplStatus(frame);
      break;
    case MsgType::kPromote:
      payload = HandlePromote(frame);
      break;
    case MsgType::kFollow:
      payload = HandleFollow(frame);
      break;
    case MsgType::kCreateIndex:
      payload = HandleCreateIndex(session, frame);
      break;
    default:
      break;
  }
  const double seconds = timer.ElapsedSeconds();
  const std::string type_name = MsgTypeName(frame.type);
  Count("xia.net.requests." + type_name);
  ObserveLatency("xia.net.latency." + type_name, seconds);

  session->in_request.store(false, std::memory_order_release);
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
  GaugeSet("xia.net.inflight_requests",
           static_cast<double>(inflight_.load()));

  if (!payload.ok()) {
    Count("xia.net.request_errors");
    ErrorReply err{payload.status().code(), payload.status().message(), {}};
    // Write rejections carry where the leader is, so clients can
    // redirect instead of guessing.
    if (err.code == StatusCode::kReadOnly ||
        err.code == StatusCode::kFenced) {
      err.leader_endpoint = LeaderEndpointHint();
    }
    return EncodeFrame(MsgType::kError, frame.request_id,
                       EncodeErrorReply(err));
  }
  return EncodeFrame(MsgType::kReply, frame.request_id, *payload);
}

std::string Server::LeaderEndpointHint() const {
  if (!follower_mode_.load(std::memory_order_acquire)) {
    // We are the leader (as far as we know).
    return options_.host + ":" + std::to_string(port());
  }
  std::lock_guard<std::mutex> lock(role_mu_);
  if (leader_host_.empty() || leader_port_ == 0) return std::string();
  return leader_host_ + ":" + std::to_string(leader_port_);
}

std::string Server::HandleReplSubscribe(Session* session,
                                        const Frame& frame) {
  const auto reject = [&](const Status& status) {
    Count("xia.net.request_errors");
    const ErrorReply err{status.code(), status.message(), ""};
    return EncodeFrame(MsgType::kError, frame.request_id,
                       EncodeErrorReply(err));
  };
  if (follower_mode_.load(std::memory_order_acquire)) {
    // No cascading replication: a replica's WAL is a copy, not a source.
    return reject(Status::ReadOnly(
        "follower cannot serve replication subscriptions"));
  }
  if (!wal_) {
    return reject(Status::FailedPrecondition(
        "replication requires a durable data dir"));
  }
  const Result<ReplSubscribeRequest> subscribe =
      DecodeReplSubscribeRequest(frame.payload);
  if (!subscribe.ok()) return reject(subscribe.status());

  Count("xia.net.requests.repl_subscribe");
  repl::StreamContext ctx;
  ctx.wal = wal_.get();
  ctx.db_mu = &db_mu_;
  ctx.hub = &repl_hub_;
  ctx.stopping = &stopping_;
  ctx.demoted = &follower_mode_;
  ctx.test_hook = options_.repl_test_hook;
  const Status ended =
      repl::RunReplStream(&session->socket, *subscribe, ctx);
  if (!ended.ok()) Count("xia.repl.stream_errors");
  return std::string();
}

fault::Deadline Server::MakeDeadline(double budget_ms) const {
  const double ms =
      budget_ms > 0 ? budget_ms : options_.default_budget_ms;
  return ms > 0 ? fault::Deadline::AfterMillis(ms)
                : fault::Deadline::Infinite();
}

Result<std::string> Server::HandlePing(Session* session, const Frame& frame,
                                       const fault::Deadline& deadline) {
  // "sleep=MS" holds the request open (polling cancel/deadline) — the
  // deterministic in-flight request that drain and admission tests need.
  constexpr std::string_view kSleepPrefix = "sleep=";
  const std::string& body = frame.payload;
  if (body.compare(0, kSleepPrefix.size(), kSleepPrefix) == 0) {
    double ms = 0;
    try {
      ms = std::stod(body.substr(kSleepPrefix.size()));
    } catch (...) {
      return Status::InvalidArgument("bad ping sleep payload: " + body);
    }
    ms = std::min(std::max(ms, 0.0), kMaxPingSleepMs);
    Stopwatch timer;
    while (timer.ElapsedMillis() < ms) {
      XIA_RETURN_IF_ERROR(fault::CheckInterrupt(deadline, &session->cancel));
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  return body;  // echo
}

Result<std::string> Server::HandleQuery(Session* session, const Frame& frame,
                                        const fault::Deadline&) {
  XIA_ASSIGN_OR_RETURN(const QueryRequest req,
                       DecodeQueryRequest(frame.payload));
  const fault::Deadline deadline = MakeDeadline(req.budget_ms);
  XIA_ASSIGN_OR_RETURN(const engine::Statement stmt,
                       engine::ParseStatement(req.statement));
  if (!stmt.is_query()) {
    return Status::InvalidArgument(
        "not a read-only statement; use a mutation request");
  }
  std::shared_lock<std::shared_mutex> lock(db_mu_);
  optimizer::Optimizer::Options opt_options;
  opt_options.deadline = deadline;
  const optimizer::Optimizer optimizer(&store_, &catalog_, &statistics_,
                                       opt_options);
  XIA_ASSIGN_OR_RETURN(const optimizer::Plan plan, optimizer.Optimize(stmt));
  engine::ExecOptions exec;
  exec.materialize_rows = req.materialize_rows;
  exec.max_rows = std::min(req.max_rows, kMaxRows);
  exec.deadline = deadline;
  exec.cancel = &session->cancel;
  XIA_ASSIGN_OR_RETURN(const engine::ExecResult result,
                       executor_.Execute(stmt, plan, exec));
  ExecReply reply;
  reply.result_count = result.result_count;
  reply.docs_examined = result.docs_examined;
  reply.index_entries_scanned = result.index_entries_scanned;
  reply.wall_seconds = result.wall_seconds;
  reply.rows = result.rows;
  return EncodeExecReply(reply);
}

Result<std::string> Server::HandleMutation(Session* session,
                                           const Frame& frame,
                                           const fault::Deadline&) {
  XIA_ASSIGN_OR_RETURN(const MutationRequest req,
                       DecodeMutationRequest(frame.payload));
  const fault::Deadline deadline = MakeDeadline(req.budget_ms);
  XIA_ASSIGN_OR_RETURN(const engine::Statement stmt,
                       engine::ParseStatement(req.statement));
  if (stmt.is_query()) {
    return Status::InvalidArgument(
        "read-only statement; use a query request");
  }
  if (follower_mode_.load(std::memory_order_acquire)) {
    return Status::ReadOnly(
        "this node is a read replica; send mutations to the leader");
  }
  std::unique_lock<std::shared_mutex> lock(db_mu_);
  // Epoch fence (checked under the exclusive lock, so a promotion
  // serialized before us cannot slip a stale-epoch write through).
  if (req.expected_epoch != 0) {
    const uint64_t epoch = wal_ ? wal_->repl_epoch() : 1;
    if (req.expected_epoch != epoch) {
      return Status::Fenced(
          "mutation fenced: expected epoch " +
          std::to_string(req.expected_epoch) + ", server is in epoch " +
          std::to_string(epoch));
    }
  }
  optimizer::Optimizer::Options opt_options;
  opt_options.deadline = deadline;
  const optimizer::Optimizer optimizer(&store_, &catalog_, &statistics_,
                                       opt_options);
  XIA_ASSIGN_OR_RETURN(const optimizer::Plan plan, optimizer.Optimize(stmt));
  engine::ExecOptions exec;
  exec.deadline = deadline;
  exec.cancel = &session->cancel;
  XIA_ASSIGN_OR_RETURN(const engine::ExecResult result,
                       executor_.Execute(stmt, plan, exec));
  ExecReply reply;
  reply.result_count = result.result_count;
  reply.docs_examined = result.docs_examined;
  reply.index_entries_scanned = result.index_entries_scanned;
  reply.wall_seconds = result.wall_seconds;

  // Quorum commit (DESIGN §15): capture this mutation's LSN while still
  // holding the exclusive lock, release it, then wait on the hub for K
  // follower acks — the wait must not block other requests. A timeout
  // fails the request loudly (kUnavailable) instead of silently
  // downgrading to async: the mutation IS durable locally and WILL
  // reach followers, but the client was promised K-replicated.
  if (options_.sync_replicas > 0 && wal_ &&
      !follower_mode_.load(std::memory_order_acquire)) {
    const uint64_t lsn = wal_->GetStatus().next_lsn - 1;
    lock.unlock();
    if (options_.repl_test_hook) {
      options_.repl_test_hook("repl.quorum.before_wait");
    }
    XIA_FAULT_INJECT(fault::points::kReplQuorumWait);
    Stopwatch quorum_timer;
    const bool satisfied = repl_hub_.WaitForQuorum(
        lsn, options_.sync_replicas, options_.quorum_timeout_ms / 1000.0);
    ObserveLatency("xia.repl.quorum.wait_seconds",
                   quorum_timer.ElapsedSeconds());
    if (!satisfied) {
      Count("xia.repl.quorum.timeouts");
      return Status::Unavailable(
          "mutation committed locally (lsn " + std::to_string(lsn) +
          ") but only " + std::to_string(repl_hub_.CountAcked(lsn)) +
          " of " + std::to_string(options_.sync_replicas) +
          " required replica acks arrived within " +
          std::to_string(options_.quorum_timeout_ms) + " ms");
    }
    Count("xia.repl.quorum.satisfied");
    if (options_.repl_test_hook) {
      options_.repl_test_hook("repl.quorum.after_ack");
    }
  }
  return EncodeExecReply(reply);
}

Result<std::string> Server::HandleCreateIndex(Session* session,
                                              const Frame& frame) {
  (void)session;
  XIA_ASSIGN_OR_RETURN(const CreateIndexRequest req,
                       DecodeCreateIndexRequest(frame.payload));
  if (follower_mode_.load(std::memory_order_acquire)) {
    return Status::ReadOnly(
        "this node is a read replica; send DDL to the leader");
  }
  XIA_ASSIGN_OR_RETURN(xpath::Path path, xpath::ParsePattern(req.pattern));
  xpath::IndexPattern pattern{std::move(path),
                              static_cast<xpath::ValueType>(req.value_type)};
  pattern.structural = req.structural;

  CreateIndexReply reply;
  const storage::IndexDef* def = nullptr;
  if (req.is_virtual) {
    std::unique_lock<std::shared_mutex> lock(db_mu_);
    XIA_ASSIGN_OR_RETURN(
        def, catalog_.CreateVirtualIndex(req.name, req.collection, pattern));
  } else if (req.online) {
    // Non-blocking build (DESIGN §16): queries keep running under shared
    // locks while the scan proceeds; the WAL record is written inside
    // the swap's exclusive section so crash recovery either replays the
    // whole index build or none of it.
    storage::OnlineBuildReport report;
    auto commit = [&]() -> Status {
      if (wal_) {
        return wal_->LogCreateIndex(req.name, req.collection, pattern);
      }
      return Status::OK();
    };
    XIA_ASSIGN_OR_RETURN(
        def, storage::BuildIndexOnline(&catalog_, &db_mu_, req.name,
                                       req.collection, pattern, {}, commit,
                                       &report));
    reply.online = true;
    reply.build_seconds = report.total_seconds;
    reply.stall_seconds = report.exclusive_seconds;
    reply.delta_ops = report.delta_ops_applied;
  } else {
    Stopwatch sw;
    std::unique_lock<std::shared_mutex> lock(db_mu_);
    XIA_ASSIGN_OR_RETURN(
        def, catalog_.CreateIndex(req.name, req.collection, pattern));
    if (wal_) {
      XIA_RETURN_IF_ERROR(
          wal_->LogCreateIndex(req.name, req.collection, pattern));
    }
    reply.build_seconds = sw.ElapsedSeconds();
  }
  reply.entry_count = def->stats.entry_count;
  reply.size_bytes = def->stats.size_bytes;
  return EncodeCreateIndexReply(reply);
}

Result<std::string> Server::HandleAdvise(Session* session, const Frame& frame,
                                         const fault::Deadline&) {
  XIA_ASSIGN_OR_RETURN(const AdviseRequest req,
                       DecodeAdviseRequest(frame.payload));
  advisor::AdvisorOptions options;
  XIA_ASSIGN_OR_RETURN(options.algorithm, ParseAlgorithm(req.algorithm));
  if (req.disk_budget_bytes <= 0) {
    return Status::InvalidArgument("disk budget must be positive");
  }
  options.disk_budget_bytes = static_cast<double>(req.disk_budget_bytes);
  options.budget_ms = req.budget_ms > 0 ? req.budget_ms
                                        : options_.default_budget_ms;
  options.cancel = &session->cancel;
  options.threads =
      req.threads > 0 ? req.threads : options_.advise_threads;

  engine::Workload workload;
  if (req.workload_text.empty()) {
    // Advise on the captured workload: fold the pending capture batch
    // into the templatizer (leaf lock) and advise on the templates.
    std::lock_guard<std::mutex> tlock(tmpl_mu_);
    templates_.AddBatch(capture_.Drain());
    if (templates_.empty()) {
      return Status::FailedPrecondition(
          "no captured workload yet; send statements or a workload text");
    }
    workload = templates_.ToWorkload();
  } else {
    XIA_ASSIGN_OR_RETURN(workload,
                         workload::DeserializeWorkload(req.workload_text));
  }

  // Shared lock: what-if advising coexists with queries; each request's
  // IndexAdvisor owns a private scratch catalog (DESIGN §12) so nothing
  // it hypothesizes touches the system catalog.
  std::shared_lock<std::shared_mutex> lock(db_mu_);
  advisor::IndexAdvisor advisor(&store_, &statistics_);
  XIA_ASSIGN_OR_RETURN(const advisor::Recommendation rec,
                       advisor.Recommend(workload, options));
  AdviseReply reply;
  reply.total_size_bytes = static_cast<uint64_t>(rec.total_size_bytes);
  reply.est_speedup = rec.est_speedup;
  reply.optimizer_calls = rec.optimizer_calls;
  reply.partial = rec.partial;
  for (const advisor::RecommendedIndex& index : rec.indexes) {
    reply.indexes.push_back(
        AdviseReplyIndex{index.ddl, index.size_bytes, index.is_general});
  }
  return EncodeAdviseReply(reply);
}

Result<std::string> Server::HandleExplain(Session* session,
                                          const Frame& frame,
                                          const fault::Deadline&) {
  XIA_ASSIGN_OR_RETURN(const ExplainRequest req,
                       DecodeExplainRequest(frame.payload));
  const fault::Deadline deadline = MakeDeadline(req.budget_ms);
  XIA_ASSIGN_OR_RETURN(const engine::Statement stmt,
                       engine::ParseStatement(req.statement));

  const auto run = [&](auto& lock) -> Result<std::string> {
    (void)lock;
    optimizer::Optimizer::Options opt_options;
    opt_options.deadline = deadline;
    const optimizer::Optimizer optimizer(&store_, &catalog_, &statistics_,
                                         opt_options);
    XIA_ASSIGN_OR_RETURN(const optimizer::Plan plan,
                         optimizer.Optimize(stmt));
    engine::ExecOptions exec;
    exec.deadline = deadline;
    exec.cancel = &session->cancel;
    std::string text;
    if (req.analyze) {
      XIA_ASSIGN_OR_RETURN(text, executor_.ExplainAnalyze(stmt, plan, exec));
    } else {
      text = plan.Describe();
    }
    return EncodeTextReply(TextReply{text});
  };

  // EXPLAIN ANALYZE of a mutation executes it — that needs the writer
  // lock (and is a mutation for read-only purposes); everything else is
  // read-only.
  if (req.analyze && stmt.is_modification()) {
    if (follower_mode_.load(std::memory_order_acquire)) {
      return Status::ReadOnly(
          "EXPLAIN ANALYZE of a mutation executes it; this node is a "
          "read replica");
    }
    std::unique_lock<std::shared_mutex> lock(db_mu_);
    return run(lock);
  }
  std::shared_lock<std::shared_mutex> lock(db_mu_);
  return run(lock);
}

Result<std::string> Server::HandleMetrics(const Frame& frame) {
  XIA_ASSIGN_OR_RETURN(const MetricsRequest req,
                       DecodeMetricsRequest(frame.payload));
  UpdateServerGauges();
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Global().Snapshot();
  std::string text;
  switch (req.format) {
    case MetricsFormat::kJson:
      text = snapshot.ToJson();
      break;
    case MetricsFormat::kPrometheus:
      text = snapshot.ToPrometheus();
      break;
    case MetricsFormat::kTable:
      text = snapshot.ToTable();
      break;
  }
  return EncodeTextReply(TextReply{text});
}

Result<std::string> Server::HandleReplStatus(const Frame& frame) {
  XIA_RETURN_IF_ERROR(DecodeReplStatusRequest(frame.payload).status());
  ReplStatusReply reply;
  const bool follower = follower_mode_.load(std::memory_order_acquire);
  reply.role = follower ? "follower" : "leader";
  if (wal_) {
    const wal::WalStatus wal_status = wal_->GetStatus();
    reply.repl_epoch = wal_status.repl_epoch;
    reply.epoch_start_lsn = wal_status.epoch_start_lsn;
    reply.durable_lsn = wal_status.durable_lsn;
    reply.checkpoint_lsn = wal_status.checkpoint_lsn;
  }
  reply.leader_endpoint = LeaderEndpointHint();
  if (follower) {
    std::lock_guard<std::mutex> lock(role_mu_);
    if (applier_) reply.applied_lsn = applier_->GetStats().applied_lsn;
  } else {
    for (const repl::FollowerInfo& info : repl_hub_.Snapshot()) {
      ReplStatusFollower f;
      f.follower_id = info.follower_id;
      f.acked_lsn = info.acked_lsn;
      f.connected = info.streaming;
      reply.followers.push_back(std::move(f));
    }
  }
  return EncodeReplStatusReply(reply);
}

Result<std::string> Server::HandlePromote(const Frame& frame) {
  XIA_RETURN_IF_ERROR(DecodePromoteRequest(frame.payload).status());
  PromoteReply reply;
  XIA_RETURN_IF_ERROR(Promote(&reply.epoch, &reply.barrier_lsn));
  return EncodePromoteReply(reply);
}

Result<std::string> Server::HandleFollow(const Frame& frame) {
  XIA_ASSIGN_OR_RETURN(const FollowRequest req,
                       DecodeFollowRequest(frame.payload));
  XIA_RETURN_IF_ERROR(Follow(req.host, req.port));
  return EncodeTextReply(
      TextReply{"following " + req.host + ":" + std::to_string(req.port)});
}

Status Server::Promote(uint64_t* epoch, uint64_t* barrier_lsn) {
  if (!wal_) {
    return Status::FailedPrecondition(
        "promotion requires a durable data dir");
  }
  XIA_FAULT_INJECT(fault::points::kReplPromote);
  std::lock_guard<std::mutex> role_lock(role_mu_);
  if (!follower_mode_.load(std::memory_order_acquire)) {
    // Already the leader: report the current epoch, do not bump again
    // (a promote retried after a timeout must not burn an epoch).
    *epoch = wal_->repl_epoch();
    *barrier_lsn = wal_->epoch_start_lsn();
    return Status::OK();
  }
  // Quiesce the applier before touching the log: it takes the exclusive
  // db lock per record and must not apply anything past our barrier.
  if (applier_) {
    applier_->Stop();
    applier_.reset();
  }
  {
    std::unique_lock<std::shared_mutex> lock(db_mu_);
    XIA_ASSIGN_OR_RETURN(*barrier_lsn, wal_->BumpEpoch());
  }
  *epoch = wal_->repl_epoch();
  leader_host_.clear();
  leader_port_ = 0;
  follower_mode_.store(false, std::memory_order_release);
  Count("xia.repl.promotions");
  return Status::OK();
}

Status Server::Follow(const std::string& host, uint16_t port) {
  if (!wal_) {
    return Status::FailedPrecondition(
        "a follower needs a data_dir: its local WAL is what makes "
        "rejoin crash-safe");
  }
  std::lock_guard<std::mutex> role_lock(role_mu_);
  // Demote FIRST: in-flight leader streams see the flag and fence off,
  // and new mutations are rejected, before the applier starts pulling.
  follower_mode_.store(true, std::memory_order_release);
  if (applier_) {
    applier_->Stop();
    applier_.reset();
  }
  leader_host_ = host;
  leader_port_ = port;
  StartApplierLocked();
  Count("xia.repl.follows");
  return Status::OK();
}

void Server::UpdateServerGauges() {
  GaugeSet("xia.net.open_sessions",
           static_cast<double>(open_sessions_.load()));
  GaugeSet("xia.net.inflight_requests",
           static_cast<double>(inflight_.load()));
}

void Server::MetricsDumpLoop() {
  std::unique_lock<std::mutex> lock(metrics_mu_);
  const auto interval = std::chrono::duration<double>(
      options_.metrics_interval_s > 0 ? options_.metrics_interval_s : 1.0);
  for (;;) {
    const bool stop =
        metrics_cv_.wait_for(lock, interval, [&] { return metrics_stop_; });
    UpdateServerGauges();
    (void)WriteFileAtomic(
        options_.metrics_json_path,
        obs::MetricsRegistry::Global().Snapshot().ToJson());
    if (stop) return;  // final dump written above
  }
}

Status Server::Stop() {
  bool expected = true;
  if (!running_.compare_exchange_strong(expected, false,
                                        std::memory_order_acq_rel)) {
    return Status::OK();  // already stopped
  }
  stopping_.store(true, std::memory_order_release);

  // 0. Stop the follower applier first: it takes the exclusive db lock
  //    per applied record and must be quiesced before the final
  //    checkpoint below.
  {
    std::lock_guard<std::mutex> lock(role_mu_);
    if (applier_) applier_->Stop();
  }

  // 1. Refuse new connections.
  listener_.Shutdown();
  if (acceptor_.joinable()) acceptor_.join();
  listener_.Close();

  // 2. Half-close every session's read side: idle sessions wake from
  //    recv with EOF and exit; in-request sessions still own their write
  //    side, finish, send their response, then see the EOF.
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (const auto& session : sessions_) session->socket.ShutdownRead();
  }

  // 3. Drain within the timeout, then cancel stragglers cooperatively.
  const fault::Deadline drain =
      options_.drain_timeout_s > 0
          ? fault::Deadline::AfterSeconds(options_.drain_timeout_s)
          : fault::Deadline::Infinite();
  for (;;) {
    bool busy = false;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      for (const auto& session : sessions_) {
        if (!session->done.load(std::memory_order_acquire)) busy = true;
      }
    }
    if (!busy) break;
    if (drain.expired()) {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      for (const auto& session : sessions_) session->cancel.Cancel();
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (const auto& session : sessions_) {
      if (session->thread.joinable()) session->thread.join();
    }
    sessions_.clear();
  }

  // 4. Stop the metrics dumper (it writes one final snapshot).
  if (metrics_dumper_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(metrics_mu_);
      metrics_stop_ = true;
    }
    metrics_cv_.notify_all();
    metrics_dumper_.join();
  }

  // 5. Checkpoint and close the WAL so restart recovery is instant.
  Status result = Status::OK();
  if (wal_) {
    std::unique_lock<std::shared_mutex> lock(db_mu_);
    result = wal_->Checkpoint(store_, catalog_);
    const Status closed = wal_->Close();
    if (result.ok()) result = closed;
  }
  capture_.set_enabled(false);
  return result;
}

ReplStatus Server::GetReplStatus() const {
  ReplStatus status;
  status.is_follower = follower_mode_.load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> lock(role_mu_);
    if (applier_) status.applier = applier_->GetStats();
  }
  status.followers = repl_hub_.Snapshot();
  if (wal_) {
    const wal::WalStatus wal_status = wal_->GetStatus();
    status.durable_lsn = wal_status.durable_lsn;
    status.checkpoint_lsn = wal_status.checkpoint_lsn;
    status.repl_epoch = wal_status.repl_epoch;
    status.epoch_start_lsn = wal_status.epoch_start_lsn;
  }
  return status;
}

Result<std::string> Server::StoreDigest() {
  std::shared_lock<std::shared_mutex> lock(db_mu_);
  std::ostringstream out;
  XIA_RETURN_IF_ERROR(storage::SaveSnapshot(store_, out));
  std::string bytes = out.str();
  // Index definitions are digested name-sorted: a follower loads its
  // catalog from a name-ordered file while the leader built its by
  // replay order, so only the set — not the order — is comparable.
  std::vector<std::string> defs;
  for (const std::string& coll : store_.CollectionNames()) {
    for (const storage::IndexDef* def : catalog_.IndexesFor(coll)) {
      if (def->is_virtual) continue;
      defs.push_back(def->name + "@" + def->collection + ":" +
                     def->pattern.ToString());
    }
  }
  std::sort(defs.begin(), defs.end());
  bytes += "|indexes:";
  for (const std::string& def : defs) {
    bytes += def;
    bytes += ';';
  }
  return std::to_string(Crc32(bytes)) + "-" + std::to_string(bytes.size());
}

Status Server::CheckpointNow() {
  if (!wal_) {
    return Status::FailedPrecondition("no WAL to checkpoint (volatile)");
  }
  std::unique_lock<std::shared_mutex> lock(db_mu_);
  return wal_->Checkpoint(store_, catalog_);
}

ServerStats Server::GetStats() const {
  ServerStats stats;
  stats.connections_total = connections_total_.load(std::memory_order_relaxed);
  stats.requests_total = requests_total_.load(std::memory_order_relaxed);
  stats.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  stats.admission_rejects =
      admission_rejects_.load(std::memory_order_relaxed);
  stats.open_sessions = open_sessions_.load(std::memory_order_relaxed);
  stats.inflight_requests = inflight_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace xia::net
