// Binary snapshots of a DocumentStore.
//
// The CLI tools re-parse XML trees on every invocation; a snapshot
// round-trips the whole store through one flat file instead. The format
// preserves DocIds exactly — including dead slots left by deletions — so
// index RIDs built against the original store remain meaningful against a
// reloaded one.
//
// Layout (all integers little-endian):
//   "XIASNAP2"                          magic + version
//   u32 collection_count
//   per collection, a CRC-framed section:
//     u32 payload_len
//     payload                           (the collection body below)
//     u32 crc32(payload)                (IEEE CRC-32, zlib variant)
// collection body:
//   str  name
//   u32  slot_count                     (id_bound: live + dead slots)
//   per slot: u8 live; if live:
//     u32 node_count
//     per node: u8 kind; str label; str value; i32 parent
// where str = u32 length + bytes.
//
// The per-section CRC turns any single bit flip or truncation into a
// precise kDataLoss/kParseError status instead of silently corrupt data.
// Legacy "XIASNAP1" files (the same collection bodies, unframed and
// unchecksummed) still load. Loading always parses into a staging store
// and swaps on success, so a failed load never partially mutates the
// caller's store.

#ifndef XIA_STORAGE_SNAPSHOT_H_
#define XIA_STORAGE_SNAPSHOT_H_

#include <iosfwd>
#include <string>

#include "storage/document_store.h"
#include "util/status.h"

namespace xia::storage {

/// Serializes every collection of `store` to `out`.
Status SaveSnapshot(const DocumentStore& store, std::ostream& out);

/// Convenience: save to a file path.
Status SaveSnapshotToFile(const DocumentStore& store,
                          const std::string& path);

/// Restores a snapshot into `store`, which must be empty (no collections).
/// DocIds, including gaps from deleted documents, are reproduced exactly.
Status LoadSnapshot(std::istream& in, DocumentStore* store);

/// Convenience: load from a file path.
Status LoadSnapshotFromFile(const std::string& path, DocumentStore* store);

}  // namespace xia::storage

#endif  // XIA_STORAGE_SNAPSHOT_H_
