// Binary snapshots of a DocumentStore.
//
// The CLI tools re-parse XML trees on every invocation; a snapshot
// round-trips the whole store through one flat file instead. The format
// preserves DocIds exactly — including dead slots left by deletions — so
// index RIDs built against the original store remain meaningful against a
// reloaded one.
//
// Layout (all integers little-endian):
//   "XIASNAP1"                          magic + version
//   u32 collection_count
//   per collection:
//     str  name
//     u32  slot_count                   (id_bound: live + dead slots)
//     per slot: u8 live; if live:
//       u32 node_count
//       per node: u8 kind; str label; str value; i32 parent
// where str = u32 length + bytes.

#ifndef XIA_STORAGE_SNAPSHOT_H_
#define XIA_STORAGE_SNAPSHOT_H_

#include <iosfwd>
#include <string>

#include "storage/document_store.h"
#include "util/status.h"

namespace xia::storage {

/// Serializes every collection of `store` to `out`.
Status SaveSnapshot(const DocumentStore& store, std::ostream& out);

/// Convenience: save to a file path.
Status SaveSnapshotToFile(const DocumentStore& store,
                          const std::string& path);

/// Restores a snapshot into `store`, which must be empty (no collections).
/// DocIds, including gaps from deleted documents, are reproduced exactly.
Status LoadSnapshot(std::istream& in, DocumentStore* store);

/// Convenience: load from a file path.
Status LoadSnapshotFromFile(const std::string& path, DocumentStore* store);

}  // namespace xia::storage

#endif  // XIA_STORAGE_SNAPSHOT_H_
