// Path value indexes: the physical XML index structure.
//
// A PathValueIndex over pattern P of type T contains one entry
// (value, (doc, node)) for every node reachable by P whose text value is
// usable at type T (numeric indexes skip values that do not cast — the
// DB2 "REJECT INVALID VALUES" behaviour). Entries live in a B+-tree keyed
// by (value, rid), supporting equality and range lookups.

#ifndef XIA_STORAGE_INDEX_H_
#define XIA_STORAGE_INDEX_H_

#include <map>
#include <string>
#include <vector>

#include "storage/btree.h"
#include "storage/cost_constants.h"
#include "storage/document_store.h"
#include "storage/statistics.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "xml/node.h"
#include "xpath/path.h"

namespace xia::storage {

/// Key of an XML value index entry: a typed value plus the record id.
/// All keys within one index share the same type.
struct IndexKey {
  xpath::ValueType type = xpath::ValueType::kString;
  double num = 0.0;
  std::string str;
  xml::NodeRef rid;

  bool operator<(const IndexKey& o) const {
    if (type == xpath::ValueType::kNumeric) {
      if (num != o.num) return num < o.num;
    } else {
      const int c = str.compare(o.str);
      if (c != 0) return c < 0;
    }
    return rid < o.rid;
  }
};

/// Result of an index lookup: qualifying RIDs plus the cost-relevant
/// physical counters.
struct IndexLookupResult {
  std::vector<xml::NodeRef> rids;
  size_t leaf_pages_touched = 0;
};

/// A physical XML value index over one collection.
class PathValueIndex {
 public:
  PathValueIndex(std::string name, std::string collection,
                 xpath::IndexPattern pattern)
      : name_(std::move(name)),
        collection_(std::move(collection)),
        pattern_(std::move(pattern)) {}

  const std::string& name() const { return name_; }
  const std::string& collection() const { return collection_; }
  const xpath::IndexPattern& pattern() const { return pattern_; }

  /// Builds the index from every live document of `coll` by incremental
  /// insertion. Kept as the reference path; CreateIndex uses BuildBulk.
  void Build(const Collection& coll);

  /// Builds from every live document via the fast path: key extraction
  /// (parallelized across documents when `pool` is non-null), one sort,
  /// then a bottom-up BTree::BulkLoad. Content-identical to Build() —
  /// entries are fully ordered by (value, rid), so extraction order never
  /// shows in the result.
  void BuildBulk(const Collection& coll, util::ThreadPool* pool = nullptr);

  /// Bulk-builds several indexes over the same collection in ONE document
  /// scan: each document is pulled into cache once and key-extracted for
  /// every index before moving on, instead of every index re-scanning a
  /// cold store. Content-identical to calling BuildBulk on each index.
  /// All indexes must target `coll`'s collection.
  static void BuildBulkMany(const Collection& coll,
                            const std::vector<PathValueIndex*>& indexes,
                            util::ThreadPool* pool = nullptr);

  /// Replaces the index contents with `keys` (any order; duplicates
  /// tolerated): sorts, dedupes, rebuilds the derived statistics, and
  /// bottom-up bulk-loads the tree. The online builder feeds this with
  /// keys extracted under its own lock discipline.
  void BulkLoadKeys(std::vector<IndexKey> keys);

  /// Appends the entries one document contributes under this index's
  /// pattern to `out`, without touching the tree. The single extraction
  /// routine shared by incremental maintenance, the bulk builder, and the
  /// online build's side log.
  void ExtractKeys(xml::DocId id, const xml::Document& doc,
                   std::vector<IndexKey>* out) const;

  /// Applies one pre-extracted entry (online-build side-log replay).
  /// No-ops on duplicate insert / absent erase.
  void InsertKey(const IndexKey& key);
  void EraseKey(const IndexKey& key);

  /// Index maintenance on document insert/remove.
  void OnInsert(xml::DocId id, const xml::Document& doc);
  void OnRemove(xml::DocId id, const xml::Document& doc);

  /// CRC32 over every entry in key order — a content identity that is
  /// independent of how the tree was built (serial/parallel/bulk/online).
  uint32_t ContentDigest() const;

  /// Looks up RIDs whose value satisfies (op, literal). Returns
  /// InvalidArgument for operators an index cannot serve (!=), a literal
  /// type mismatching the index type, or a structural index.
  Result<IndexLookupResult> Lookup(xpath::CompareOp op,
                                   const xpath::Literal& literal) const;

  /// Scans every entry (the access path of an existence predicate served
  /// by a structural index; also legal on value indexes).
  Result<IndexLookupResult> LookupAll() const;

  size_t entry_count() const { return tree_.size(); }

  /// Physical statistics of the built index.
  IndexStats ActualStats(const CostConstants& cc) const;

 private:
  // Adds/removes the entries contributed by one document.
  void Apply(xml::DocId id, const xml::Document& doc, bool insert);

  std::string name_;
  std::string collection_;
  xpath::IndexPattern pattern_;
  BTree<IndexKey> tree_;
  double key_bytes_sum_ = 0.0;
  // Per-value entry counts, maintained under inserts and deletes so
  // ActualStats can report exact distinct-key counts and value ranges
  // (numeric_counts_ for numeric indexes, string_counts_ otherwise).
  std::map<double, uint32_t> numeric_counts_;
  std::map<std::string, uint32_t> string_counts_;
};

/// Batched-ingest fast path: call Add() per incoming document and Finish()
/// once at the end. Keys for every index are extracted while the document
/// is still cache-hot from parsing, buffered, and bulk-loaded in one
/// bottom-up pass per index — the store is never re-scanned cold and the
/// trees never absorb one-at-a-time inserts. Content-identical to calling
/// Collection::Add + OnInsert per document.
class BulkIngestor {
 public:
  /// All `indexes` must target `coll`'s collection and be empty.
  BulkIngestor(Collection* coll, std::vector<PathValueIndex*> indexes);

  /// Adds one document to the collection and hot-extracts its keys for
  /// every index. Returns the assigned DocId.
  xml::DocId Add(xml::Document doc);

  /// Bulk-loads the buffered keys into every index. Call exactly once;
  /// the ingestor is spent afterwards.
  void Finish();

 private:
  Collection* coll_;
  std::vector<PathValueIndex*> indexes_;
  std::vector<std::vector<IndexKey>> keys_;  // parallel to indexes_
};

}  // namespace xia::storage

#endif  // XIA_STORAGE_INDEX_H_
