// Cost-model constants shared by the storage layer and the optimizer.
//
// Costs are expressed in abstract "timerons" (the DB2 term): one unit is
// one sequential page read. Random I/O, CPU per node visited, and per-key
// comparison costs are scaled relative to that. The advisor only consumes
// cost *differences*, so the absolute scale is immaterial; the ratios shape
// plan choices exactly as in a disk-based system.

#ifndef XIA_STORAGE_COST_CONSTANTS_H_
#define XIA_STORAGE_COST_CONSTANTS_H_

#include <cstddef>

namespace xia::storage {

/// Tunable cost/model constants. A single instance is threaded through the
/// optimizer so experiments can perturb it (sensitivity ablation).
struct CostConstants {
  /// Bytes per storage page.
  size_t page_size = 4096;

  /// Cost of one sequential page read (the unit).
  double seq_page_cost = 1.0;
  /// Cost of one random page read.
  double random_page_cost = 4.0;
  /// CPU cost of visiting one XML node during navigation.
  double cpu_node_cost = 0.002;
  /// CPU cost of evaluating one predicate comparison.
  double cpu_compare_cost = 0.001;
  /// CPU cost of processing one index entry on a scanned leaf.
  double cpu_index_entry_cost = 0.0005;
  /// Cost of fetching one document given its RID (buffered random read).
  double fetch_doc_cost = 2.0;
  /// CPU cost of one RID-list intersection element (index ANDing).
  double cpu_rid_intersect_cost = 0.0002;

  /// B+-tree page write cost during index maintenance.
  double index_write_cost = 2.0;
  /// Fraction of index levels re-traversed per maintained entry.
  double maintenance_traverse_factor = 1.0;

  /// Bytes of overhead per index entry beyond the key bytes (RID + page
  /// bookkeeping).
  size_t index_entry_overhead = 12;
  /// Fan-out assumed when deriving the height of a virtual index.
  size_t assumed_fanout = 64;
};

/// The process-wide defaults.
const CostConstants& DefaultCostConstants();

}  // namespace xia::storage

#endif  // XIA_STORAGE_COST_CONSTANTS_H_
