#include "storage/cost_constants.h"

namespace xia::storage {

const CostConstants& DefaultCostConstants() {
  static const CostConstants kDefaults;
  return kDefaults;
}

}  // namespace xia::storage
