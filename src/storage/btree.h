// An in-memory B+-tree, the physical structure backing XML value indexes.
//
// The tree is page-structured: leaves hold up to kLeafCapacity keys and are
// chained for range scans; internal nodes hold separator keys and child
// pointers. Page counts and height are exposed because the optimizer's cost
// model charges index access by levels and leaf pages touched — the same
// quantities DB2's cost model uses for its indexes.
//
// Keys must be totally ordered by Less and unique (XML index keys embed the
// record id, which makes duplicates of (value, rid) impossible).

#ifndef XIA_STORAGE_BTREE_H_
#define XIA_STORAGE_BTREE_H_

#include <cassert>
#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace xia::storage {

/// B+-tree with configurable per-page fanout.
template <typename Key, typename Less = std::less<Key>>
class BTree {
 public:
  /// Keys per leaf page; also the fanout of internal pages. 64 models a
  /// few-KB page with short keys.
  static constexpr size_t kLeafCapacity = 64;
  static constexpr size_t kMinKeys = kLeafCapacity / 2;

  BTree() { root_ = NewLeaf(); }
  ~BTree() = default;

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;
  BTree(BTree&&) = default;
  BTree& operator=(BTree&&) = default;

  /// Inserts `key`; returns false if an equal key already exists.
  bool Insert(const Key& key);

  /// Replaces the tree's contents with `keys`, which must be strictly
  /// increasing under Less. Packs full leaves bottom-up and builds each
  /// internal level in one pass — O(n) with no per-key root descents,
  /// versus ~n·log n comparisons plus continual splits for incremental
  /// Insert. The final node of every level is rebalanced with its left
  /// sibling so the packed tree satisfies the same minimum-fill invariant
  /// Erase maintains. Returns false (and leaves the tree empty) if the
  /// input is not strictly increasing — duplicate or unsorted input is a
  /// caller bug, not a tolerated mode.
  bool BulkLoad(std::vector<Key> keys);

  /// Removes `key`; returns false if absent.
  bool Erase(const Key& key);

  bool Contains(const Key& key) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Number of leaf pages.
  size_t leaf_count() const { return leaf_count_; }
  /// Number of internal pages.
  size_t internal_count() const { return internal_count_; }
  /// Tree height in levels (a single leaf is height 1).
  size_t height() const { return height_; }

  /// Forward iterator over keys in sorted order.
  class Iterator {
   public:
    Iterator() = default;

    bool valid() const { return leaf_ != nullptr; }
    const Key& key() const {
      assert(valid());
      return leaf_->keys[pos_];
    }
    void Next() {
      assert(valid());
      if (++pos_ >= leaf_->keys.size()) {
        leaf_ = leaf_->next;
        pos_ = 0;
      }
    }

    /// Opaque identity of the current leaf page; changes when the iterator
    /// crosses a page boundary. Used for I/O accounting.
    const void* page() const { return leaf_; }

   private:
    friend class BTree;
    Iterator(const typename BTree::Node* leaf, size_t pos)
        : leaf_(leaf), pos_(pos) {}
    const typename BTree::Node* leaf_ = nullptr;
    size_t pos_ = 0;
  };

  /// Iterator at the first key >= `key` (end iterator if none).
  Iterator LowerBound(const Key& key) const;

  /// Iterator at the first key (end iterator when empty).
  Iterator Begin() const;

  /// Visits keys in [lo, hi] inclusive; stops early if `fn` returns false.
  /// Returns the number of leaf pages touched (for cost accounting).
  size_t Scan(const Key& lo, const Key& hi,
              const std::function<bool(const Key&)>& fn) const;

  /// Checks structural invariants (ordering, fill factors, height balance).
  /// Intended for tests; returns false on the first violation.
  bool CheckInvariants() const;

 private:
  struct Node {
    bool leaf = true;
    std::vector<Key> keys;
    // Internal nodes: children.size() == keys.size() + 1. keys[i] is the
    // smallest key in the subtree children[i+1].
    std::vector<std::unique_ptr<Node>> children;
    // Leaf chain.
    Node* next = nullptr;
    Node* prev = nullptr;
  };

  std::unique_ptr<Node> NewLeaf() {
    ++leaf_count_;
    auto n = std::make_unique<Node>();
    n->leaf = true;
    return n;
  }
  std::unique_ptr<Node> NewInternal() {
    ++internal_count_;
    auto n = std::make_unique<Node>();
    n->leaf = false;
    return n;
  }

  bool KeyLess(const Key& a, const Key& b) const { return less_(a, b); }
  bool KeyEq(const Key& a, const Key& b) const {
    return !less_(a, b) && !less_(b, a);
  }

  // Index of the child of internal node `n` that may contain `key`.
  size_t ChildIndex(const Node* n, const Key& key) const {
    size_t lo = 0;
    size_t hi = n->keys.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (KeyLess(key, n->keys[mid])) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }

  // Position of the first key >= `key` in a leaf.
  size_t LeafLowerBound(const Node* n, const Key& key) const {
    size_t lo = 0;
    size_t hi = n->keys.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (KeyLess(n->keys[mid], key)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  // Recursive insert. If the child splits, *split_key and *split_node are
  // set and the caller must link them. Returns false on duplicate.
  bool InsertRec(Node* n, const Key& key, Key* split_key,
                 std::unique_ptr<Node>* split_node);

  // Recursive erase. Returns true if the key was removed. The caller fixes
  // up underflow of `n`'s children.
  bool EraseRec(Node* n, const Key& key);

  // Rebalances child `idx` of internal node `n` after an erase left it
  // under-full.
  void FixUnderflow(Node* n, size_t idx);

  void FreeNodeCounters(const Node* n) {
    if (n->leaf) {
      --leaf_count_;
    } else {
      --internal_count_;
    }
  }

  const Node* FindLeaf(const Key& key) const {
    const Node* n = root_.get();
    while (!n->leaf) n = n->children[ChildIndex(n, key)].get();
    return n;
  }

  bool CheckNode(const Node* n, const Key* lo, const Key* hi, size_t depth,
                 size_t leaf_depth) const;

  Less less_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
  size_t leaf_count_ = 0;
  size_t internal_count_ = 0;
  size_t height_ = 1;
};

// ---------------------------------------------------------------------------
// Implementation.

template <typename Key, typename Less>
bool BTree<Key, Less>::Insert(const Key& key) {
  Key split_key;
  std::unique_ptr<Node> split_node;
  if (!InsertRec(root_.get(), key, &split_key, &split_node)) return false;
  if (split_node) {
    auto new_root = NewInternal();
    new_root->keys.push_back(split_key);
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split_node));
    root_ = std::move(new_root);
    ++height_;
  }
  ++size_;
  return true;
}

template <typename Key, typename Less>
bool BTree<Key, Less>::InsertRec(Node* n, const Key& key, Key* split_key,
                                 std::unique_ptr<Node>* split_node) {
  if (n->leaf) {
    const size_t pos = LeafLowerBound(n, key);
    if (pos < n->keys.size() && KeyEq(n->keys[pos], key)) return false;
    n->keys.insert(n->keys.begin() + static_cast<ptrdiff_t>(pos), key);
    if (n->keys.size() > kLeafCapacity) {
      // Split leaf: right half moves to a new leaf.
      auto right = NewLeaf();
      const size_t half = n->keys.size() / 2;
      right->keys.assign(n->keys.begin() + static_cast<ptrdiff_t>(half),
                         n->keys.end());
      n->keys.resize(half);
      right->next = n->next;
      right->prev = n;
      if (n->next) n->next->prev = right.get();
      n->next = right.get();
      *split_key = right->keys.front();
      *split_node = std::move(right);
    }
    return true;
  }

  const size_t idx = ChildIndex(n, key);
  Key child_split_key;
  std::unique_ptr<Node> child_split;
  if (!InsertRec(n->children[idx].get(), key, &child_split_key,
                 &child_split)) {
    return false;
  }
  if (child_split) {
    n->keys.insert(n->keys.begin() + static_cast<ptrdiff_t>(idx),
                   child_split_key);
    n->children.insert(n->children.begin() + static_cast<ptrdiff_t>(idx) + 1,
                       std::move(child_split));
    if (n->keys.size() > kLeafCapacity) {
      // Split internal node. Middle key is promoted (not kept).
      auto right = NewInternal();
      const size_t mid = n->keys.size() / 2;
      *split_key = n->keys[mid];
      right->keys.assign(n->keys.begin() + static_cast<ptrdiff_t>(mid) + 1,
                         n->keys.end());
      for (size_t i = mid + 1; i < n->children.size(); ++i) {
        right->children.push_back(std::move(n->children[i]));
      }
      n->keys.resize(mid);
      n->children.resize(mid + 1);
      *split_node = std::move(right);
    }
  }
  return true;
}

template <typename Key, typename Less>
bool BTree<Key, Less>::BulkLoad(std::vector<Key> keys) {
  for (size_t i = 0; i + 1 < keys.size(); ++i) {
    if (!KeyLess(keys[i], keys[i + 1])) return false;
  }

  // Reset to an empty tree; the old pages are dropped wholesale.
  root_.reset();
  leaf_count_ = 0;
  internal_count_ = 0;
  height_ = 1;
  size_ = 0;

  if (keys.empty()) {
    root_ = NewLeaf();
    return true;
  }

  const size_t n = keys.size();

  // Pack leaves at full capacity. If the tail would fall below kMinKeys,
  // the second-to-last leaf donates: both end with >= kMinKeys, which is
  // the invariant FixUnderflow restores after erases.
  std::vector<std::unique_ptr<Node>> level;
  std::vector<Key> level_min;  // smallest key under level[i]
  level.reserve(n / kLeafCapacity + 1);
  level_min.reserve(n / kLeafCapacity + 1);
  Node* prev_leaf = nullptr;
  for (size_t i = 0; i < n;) {
    const size_t rem = n - i;
    size_t take = std::min(kLeafCapacity, rem);
    if (rem > kLeafCapacity && rem < kLeafCapacity + kMinKeys) {
      take = rem - kMinKeys;
    }
    auto leaf = NewLeaf();
    leaf->keys.reserve(take);
    for (size_t j = 0; j < take; ++j) {
      leaf->keys.push_back(std::move(keys[i + j]));
    }
    leaf->prev = prev_leaf;
    if (prev_leaf) prev_leaf->next = leaf.get();
    prev_leaf = leaf.get();
    level_min.push_back(leaf->keys.front());
    level.push_back(std::move(leaf));
    i += take;
  }

  // Build internal levels until one node remains. An internal node holds
  // up to kLeafCapacity keys = kLeafCapacity + 1 children; the same
  // tail-donation keeps every non-root node at >= kMinKeys keys.
  while (level.size() > 1) {
    const size_t child_cap = kLeafCapacity + 1;
    const size_t child_min = kMinKeys + 1;
    std::vector<std::unique_ptr<Node>> up;
    std::vector<Key> up_min;
    up.reserve(level.size() / child_cap + 1);
    up_min.reserve(level.size() / child_cap + 1);
    for (size_t i = 0; i < level.size();) {
      const size_t rem = level.size() - i;
      size_t take = std::min(child_cap, rem);
      if (rem > child_cap && rem < child_cap + child_min) {
        take = rem - child_min;
      }
      auto node = NewInternal();
      node->keys.reserve(take - 1);
      node->children.reserve(take);
      for (size_t j = 0; j < take; ++j) {
        if (j > 0) node->keys.push_back(level_min[i + j]);
        node->children.push_back(std::move(level[i + j]));
      }
      up_min.push_back(level_min[i]);
      up.push_back(std::move(node));
      i += take;
    }
    level = std::move(up);
    level_min = std::move(up_min);
    ++height_;
  }

  root_ = std::move(level.front());
  size_ = n;
  return true;
}

template <typename Key, typename Less>
bool BTree<Key, Less>::Erase(const Key& key) {
  if (!EraseRec(root_.get(), key)) return false;
  --size_;
  // Shrink the root if it became a pass-through internal node.
  while (!root_->leaf && root_->children.size() == 1) {
    std::unique_ptr<Node> child = std::move(root_->children[0]);
    FreeNodeCounters(root_.get());
    root_ = std::move(child);
    --height_;
  }
  return true;
}

template <typename Key, typename Less>
bool BTree<Key, Less>::EraseRec(Node* n, const Key& key) {
  if (n->leaf) {
    const size_t pos = LeafLowerBound(n, key);
    if (pos >= n->keys.size() || !KeyEq(n->keys[pos], key)) return false;
    n->keys.erase(n->keys.begin() + static_cast<ptrdiff_t>(pos));
    return true;
  }
  const size_t idx = ChildIndex(n, key);
  if (!EraseRec(n->children[idx].get(), key)) return false;
  const Node* child = n->children[idx].get();
  const size_t min_fill = child->leaf ? kMinKeys : kMinKeys;
  if (child->keys.size() < min_fill) FixUnderflow(n, idx);
  return true;
}

template <typename Key, typename Less>
void BTree<Key, Less>::FixUnderflow(Node* n, size_t idx) {
  Node* child = n->children[idx].get();
  Node* left = idx > 0 ? n->children[idx - 1].get() : nullptr;
  Node* right = idx + 1 < n->children.size() ? n->children[idx + 1].get()
                                             : nullptr;

  // Try borrowing from a sibling with spare keys.
  if (left && left->keys.size() > kMinKeys) {
    if (child->leaf) {
      child->keys.insert(child->keys.begin(), left->keys.back());
      left->keys.pop_back();
      n->keys[idx - 1] = child->keys.front();
    } else {
      child->keys.insert(child->keys.begin(), n->keys[idx - 1]);
      n->keys[idx - 1] = left->keys.back();
      left->keys.pop_back();
      child->children.insert(child->children.begin(),
                             std::move(left->children.back()));
      left->children.pop_back();
    }
    return;
  }
  if (right && right->keys.size() > kMinKeys) {
    if (child->leaf) {
      child->keys.push_back(right->keys.front());
      right->keys.erase(right->keys.begin());
      n->keys[idx] = right->keys.front();
    } else {
      child->keys.push_back(n->keys[idx]);
      n->keys[idx] = right->keys.front();
      right->keys.erase(right->keys.begin());
      child->children.push_back(std::move(right->children.front()));
      right->children.erase(right->children.begin());
    }
    return;
  }

  // Merge with a sibling. Merge child into left, or right into child.
  const size_t merge_idx = left ? idx - 1 : idx;  // separator key index
  Node* dst = left ? left : child;
  const size_t victim_child = left ? idx : idx + 1;
  Node* src = n->children[victim_child].get();
  if (dst->leaf) {
    dst->keys.insert(dst->keys.end(), src->keys.begin(), src->keys.end());
    dst->next = src->next;
    if (src->next) src->next->prev = dst;
  } else {
    dst->keys.push_back(n->keys[merge_idx]);
    dst->keys.insert(dst->keys.end(), src->keys.begin(), src->keys.end());
    for (auto& c : src->children) dst->children.push_back(std::move(c));
  }
  FreeNodeCounters(src);
  n->keys.erase(n->keys.begin() + static_cast<ptrdiff_t>(merge_idx));
  n->children.erase(n->children.begin() +
                    static_cast<ptrdiff_t>(victim_child));
}

template <typename Key, typename Less>
bool BTree<Key, Less>::Contains(const Key& key) const {
  const Node* leaf = FindLeaf(key);
  const size_t pos = LeafLowerBound(leaf, key);
  return pos < leaf->keys.size() && KeyEq(leaf->keys[pos], key);
}

template <typename Key, typename Less>
typename BTree<Key, Less>::Iterator BTree<Key, Less>::LowerBound(
    const Key& key) const {
  const Node* leaf = FindLeaf(key);
  size_t pos = LeafLowerBound(leaf, key);
  if (pos >= leaf->keys.size()) {
    leaf = leaf->next;
    pos = 0;
  }
  if (leaf == nullptr || leaf->keys.empty()) return Iterator();
  return Iterator(leaf, pos);
}

template <typename Key, typename Less>
typename BTree<Key, Less>::Iterator BTree<Key, Less>::Begin() const {
  const Node* n = root_.get();
  while (!n->leaf) n = n->children.front().get();
  if (n->keys.empty()) return Iterator();
  return Iterator(n, 0);
}

template <typename Key, typename Less>
size_t BTree<Key, Less>::Scan(
    const Key& lo, const Key& hi,
    const std::function<bool(const Key&)>& fn) const {
  size_t pages = 0;
  const Node* leaf = FindLeaf(lo);
  size_t pos = LeafLowerBound(leaf, lo);
  const Node* last_counted = nullptr;
  while (leaf != nullptr) {
    if (pos >= leaf->keys.size()) {
      leaf = leaf->next;
      pos = 0;
      continue;
    }
    const Key& k = leaf->keys[pos];
    if (KeyLess(hi, k)) break;
    if (leaf != last_counted) {
      ++pages;
      last_counted = leaf;
    }
    if (!fn(k)) break;
    ++pos;
  }
  return pages;
}

template <typename Key, typename Less>
bool BTree<Key, Less>::CheckNode(const Node* n, const Key* lo, const Key* hi,
                                 size_t depth, size_t leaf_depth) const {
  // Keys sorted and within (lo, hi].
  for (size_t i = 0; i + 1 < n->keys.size(); ++i) {
    if (!KeyLess(n->keys[i], n->keys[i + 1])) return false;
  }
  for (const Key& k : n->keys) {
    if (lo && KeyLess(k, *lo)) return false;
    if (hi && !KeyLess(k, *hi)) return false;
  }
  if (n->leaf) return depth == leaf_depth;
  if (n->children.size() != n->keys.size() + 1) return false;
  for (size_t i = 0; i < n->children.size(); ++i) {
    const Key* clo = (i == 0) ? lo : &n->keys[i - 1];
    const Key* chi = (i == n->keys.size()) ? hi : &n->keys[i];
    if (!CheckNode(n->children[i].get(), clo, chi, depth + 1, leaf_depth)) {
      return false;
    }
  }
  return true;
}

template <typename Key, typename Less>
bool BTree<Key, Less>::CheckInvariants() const {
  return CheckNode(root_.get(), nullptr, nullptr, 1, height_);
}

}  // namespace xia::storage

#endif  // XIA_STORAGE_BTREE_H_
