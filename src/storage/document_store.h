// The document store: named collections of XML documents.
//
// Models a table with an XML-typed column (DB2 pureXML style). Documents
// are addressed by DocId within their collection; page accounting mirrors a
// disk-resident store so the optimizer can cost collection scans.

#ifndef XIA_STORAGE_DOCUMENT_STORE_H_
#define XIA_STORAGE_DOCUMENT_STORE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/cost_constants.h"
#include "util/status.h"
#include "xml/document.h"

namespace xia::storage {

/// One named collection of documents (a table's XML column).
class Collection {
 public:
  explicit Collection(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds a document, returning its DocId. Deleted slots are not reused,
  /// so DocIds stay stable (as RIDs must).
  xml::DocId Add(xml::Document doc);

  /// Marks a document deleted. Returns NotFound if absent or already
  /// deleted.
  Status Remove(xml::DocId id);

  /// Appends a dead slot (a DocId that was assigned and deleted). Used by
  /// snapshot restore to reproduce DocIds exactly.
  xml::DocId AddTombstone() {
    docs_.emplace_back(nullptr);
    return static_cast<xml::DocId>(docs_.size() - 1);
  }

  /// True if the id addresses a live document.
  bool IsLive(xml::DocId id) const;

  /// The document; id must be live.
  const xml::Document& Get(xml::DocId id) const;

  /// Mutates a live document in place via `fn(xml::Document*)`, keeping the
  /// collection's byte/node accounting consistent. The mutation must not
  /// remove nodes (NodeIndex stability is required by index RIDs).
  template <typename Fn>
  void Mutate(xml::DocId id, Fn&& fn) {
    xml::Document* doc = docs_[static_cast<size_t>(id)].get();
    total_bytes_ -= doc->ApproximateByteSize();
    total_nodes_ -= doc->size();
    fn(doc);
    total_bytes_ += doc->ApproximateByteSize();
    total_nodes_ += doc->size();
  }

  /// Number of live documents.
  size_t live_count() const { return live_count_; }
  /// Highest assigned id + 1 (iteration bound).
  xml::DocId id_bound() const { return static_cast<xml::DocId>(docs_.size()); }

  /// Total bytes of live documents.
  size_t total_bytes() const { return total_bytes_; }
  /// Pages a scan of this collection touches.
  size_t pages(const CostConstants& cc) const {
    return total_bytes_ / cc.page_size + 1;
  }
  /// Total live nodes across documents.
  size_t total_nodes() const { return total_nodes_; }
  /// Average nodes per live document.
  double avg_nodes_per_doc() const {
    return live_count_ == 0
               ? 0.0
               : static_cast<double>(total_nodes_) /
                     static_cast<double>(live_count_);
  }

  /// Calls `fn(id, doc)` for every live document.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < docs_.size(); ++i) {
      if (docs_[i] != nullptr) {
        fn(static_cast<xml::DocId>(i), *docs_[i]);
      }
    }
  }

  /// Like ForEach, but `fn` returns bool: false stops the iteration.
  /// Lets deadline-aware scans bail out mid-collection.
  template <typename Fn>
  void ForEachWhile(Fn&& fn) const {
    for (size_t i = 0; i < docs_.size(); ++i) {
      if (docs_[i] != nullptr) {
        if (!fn(static_cast<xml::DocId>(i), *docs_[i])) return;
      }
    }
  }

 private:
  std::string name_;
  std::vector<std::unique_ptr<xml::Document>> docs_;
  size_t live_count_ = 0;
  size_t total_bytes_ = 0;
  size_t total_nodes_ = 0;
};

/// The store: a registry of collections.
class DocumentStore {
 public:
  /// Creates a collection; fails if the name exists.
  Result<Collection*> CreateCollection(const std::string& name);

  /// Looks up a collection by name.
  Result<Collection*> GetCollection(const std::string& name);
  Result<const Collection*> GetCollection(const std::string& name) const;

  /// Names of all collections.
  std::vector<std::string> CollectionNames() const;

  /// Exchanges the full contents of two stores. Snapshot restore loads
  /// into a staging store and swaps on success, so a failed load never
  /// leaves `this` partially mutated.
  void Swap(DocumentStore* other) { collections_.swap(other->collections_); }

 private:
  std::map<std::string, std::unique_ptr<Collection>> collections_;
};

}  // namespace xia::storage

#endif  // XIA_STORAGE_DOCUMENT_STORE_H_
