#include "storage/online_build.h"

#include <algorithm>
#include <iterator>

#include "fault/fault.h"
#include "obs/metrics.h"
#include "storage/catalog.h"
#include "util/stopwatch.h"

namespace xia::storage {

void IndexSideLog::Record(bool insert, xml::DocId id,
                          const xml::Document& doc) {
  // Extraction happens outside the log mutex — the caller's exclusive db
  // lock already serializes mutators, and the builder never extracts.
  std::vector<IndexKey> keys;
  target_->ExtractKeys(id, doc, &keys);
  if (keys.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  ops_.reserve(ops_.size() + keys.size());
  for (IndexKey& key : keys) {
    Op op;
    op.insert = insert;
    op.key = std::move(key);
    ops_.push_back(std::move(op));
  }
  recorded_total_ += keys.size();
}

std::vector<IndexSideLog::Op> IndexSideLog::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Op> out;
  out.swap(ops_);
  return out;
}

size_t IndexSideLog::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_.size();
}

size_t IndexSideLog::recorded_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_total_;
}

namespace {

// Detaches the side log (under the db lock) on every early-exit path, so
// a failed build never leaves the catalog forwarding mutations to a dead
// log. Disarmed once the swap section detaches explicitly.
class SideLogGuard {
 public:
  SideLogGuard(Catalog* catalog, std::shared_mutex* db_mu,
               const IndexSideLog* log)
      : catalog_(catalog), db_mu_(db_mu), log_(log) {}
  ~SideLogGuard() {
    if (armed_) {
      std::unique_lock<std::shared_mutex> lock(*db_mu_);
      catalog_->DetachSideLog(log_);
    }
  }
  void Disarm() { armed_ = false; }

 private:
  Catalog* catalog_;
  std::shared_mutex* db_mu_;
  const IndexSideLog* log_;
  bool armed_ = true;
};

void Replay(PathValueIndex* index, std::vector<IndexSideLog::Op> ops,
            size_t* applied) {
  for (const IndexSideLog::Op& op : ops) {
    if (op.insert) {
      index->InsertKey(op.key);
    } else {
      index->EraseKey(op.key);
    }
  }
  *applied += ops.size();
}

}  // namespace

Result<const IndexDef*> BuildIndexOnline(
    Catalog* catalog, std::shared_mutex* db_mu, const std::string& name,
    const std::string& collection, const xpath::IndexPattern& pattern,
    const OnlineBuildOptions& options, const std::function<Status()>& commit,
    OnlineBuildReport* report) {
  Stopwatch total_sw;
  OnlineBuildReport local_report;
  OnlineBuildReport* rep = report ? report : &local_report;

  auto built = std::make_unique<PathValueIndex>(name, collection, pattern);
  IndexSideLog side_log(built.get());

  // Phase 1 (snapshot): brief exclusive section — validate, record the
  // scan bound, attach the side log. Mutations from here on are captured.
  const Collection* coll = nullptr;
  xml::DocId scan_bound = 0;
  {
    std::unique_lock<std::shared_mutex> lock(*db_mu);
    Stopwatch excl_sw;
    XIA_FAULT_INJECT(fault::points::kIndexBuild);
    if (catalog->Get(name).ok()) {
      return Status::AlreadyExists("index " + name + " exists");
    }
    auto c = catalog->store()->GetCollection(collection);
    if (!c.ok()) return c.status();
    XIA_FAULT_INJECT(fault::points::kBtreeAlloc);
    coll = *c;
    scan_bound = coll->id_bound();
    catalog->AttachSideLog(collection, &side_log);
    rep->exclusive_seconds += excl_sw.ElapsedSeconds();
  }
  SideLogGuard guard(catalog, db_mu, &side_log);

  // Phase 2 (scan): extract keys from documents below the bound, one
  // chunk per shared-lock acquisition. Documents inserted after the bound
  // arrive via the side log; documents removed mid-scan either vanish
  // before their chunk (skipped; the side-logged erase no-ops) or are
  // extracted and then erased by replay. Both orders converge.
  std::vector<IndexKey> all;
  const size_t chunk = std::max<size_t>(1, options.scan_chunk_docs);
  for (xml::DocId lo = 0; lo < scan_bound;
       lo = static_cast<xml::DocId>(lo + chunk)) {
    const xml::DocId hi = std::min<xml::DocId>(
        scan_bound, static_cast<xml::DocId>(lo + chunk));
    std::shared_lock<std::shared_mutex> lock(*db_mu);
    const size_t span = static_cast<size_t>(hi - lo);
    std::vector<std::vector<IndexKey>> slots(span);
    auto extract = [&](size_t i) {
      const xml::DocId id = static_cast<xml::DocId>(lo + i);
      if (coll->IsLive(id)) {
        built->ExtractKeys(id, coll->Get(id), &slots[i]);
      }
      return Status::OK();
    };
    bool parallel_ok = false;
    if (options.pool != nullptr && span > 1) {
      parallel_ok = options.pool->ParallelFor(span, extract).ok();
    }
    if (!parallel_ok) {
      for (size_t i = 0; i < span; ++i) extract(i);
    }
    for (xml::DocId id = lo; id < hi; ++id) {
      if (coll->IsLive(id)) ++rep->docs_scanned;
    }
    for (auto& slot : slots) {
      std::move(slot.begin(), slot.end(), std::back_inserter(all));
    }
  }

  // Phase 3 (bulk load): outside any lock.
  built->BulkLoadKeys(std::move(all));

  // Phase 4 (catch-up): replay the side log without a lock until the tail
  // is short enough that the exclusive cut is cheap.
  while (rep->catchup_rounds < options.max_catchup_rounds &&
         side_log.pending() > options.catchup_threshold) {
    Replay(built.get(), side_log.Drain(), &rep->delta_ops_applied);
    ++rep->catchup_rounds;
  }

  // Phase 5 (swap): one short exclusive section — final drain, detach,
  // fault point, WAL commit, install.
  {
    std::unique_lock<std::shared_mutex> lock(*db_mu);
    Stopwatch excl_sw;
    Replay(built.get(), side_log.Drain(), &rep->delta_ops_applied);
    catalog->DetachSideLog(&side_log);
    guard.Disarm();
    // Fires *before* the WAL record: an injected swap failure must leave
    // both the catalog and the log without a trace of the index.
    XIA_FAULT_INJECT(fault::points::kIndexBuildSwap);
    if (commit) {
      XIA_RETURN_IF_ERROR(commit());
    }
    auto installed = catalog->InstallIndex(std::move(built));
    if (!installed.ok()) return installed.status();
    rep->exclusive_seconds += excl_sw.ElapsedSeconds();
    rep->total_seconds = total_sw.ElapsedSeconds();
    XIA_OBS_COUNT("xia.storage.index.builds_online", 1);
    XIA_OBS_OBSERVE_LATENCY("xia.storage.index.build_seconds",
                            rep->total_seconds);
    XIA_OBS_OBSERVE_LATENCY("xia.storage.index.build.stall_seconds",
                            rep->exclusive_seconds);
    XIA_OBS_COUNT("xia.storage.index.build.delta_ops",
                  rep->delta_ops_applied);
    return *installed;
  }
}

}  // namespace xia::storage
