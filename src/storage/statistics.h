// Data statistics (the RUNSTATS equivalent) and the derivation of virtual
// index statistics from them.
//
// The paper's advisor never materializes candidate indexes; instead it
// derives each virtual index's statistics (size, entry count, levels, key
// cardinality) from *data* statistics collected once per collection (§III).
// Our data statistics record, for every distinct rooted label path in the
// data: node count, approximate distinct-value count, numeric fraction and
// range, and average value length.

#ifndef XIA_STORAGE_STATISTICS_H_
#define XIA_STORAGE_STATISTICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "storage/cost_constants.h"
#include "storage/document_store.h"
#include "xpath/path.h"

namespace xia::storage {

/// Statistics for one distinct rooted label path (e.g. /Security/Yield).
struct PathStats {
  /// Labels from the root, e.g. {"Security", "Yield"}.
  std::vector<std::string> labels;
  /// Total nodes reachable by this exact label path.
  uint64_t count = 0;
  /// Nodes with a non-empty text value.
  uint64_t valued_count = 0;
  /// Nodes whose value parses as a number.
  uint64_t numeric_count = 0;
  /// Approximate distinct non-empty values.
  uint64_t distinct_values = 0;
  /// Approximate distinct numeric values.
  uint64_t distinct_numeric = 0;
  /// Range of numeric values (valid when numeric_count > 0).
  double min_numeric = 0.0;
  double max_numeric = 0.0;
  /// Lexicographic range of string values (valid when valued_count > 0).
  std::string min_string;
  std::string max_string;
  /// Average byte length of non-empty values.
  double avg_value_length = 0.0;
  /// Equi-depth histogram boundaries over the numeric values (quantiles at
  /// i/B for i = 0..B). Empty when histogram collection is disabled or the
  /// path has no numeric values.
  std::vector<double> numeric_quantiles;

  std::string PathString() const;
};

/// Statistics derived for a (possibly virtual) index.
struct IndexStats {
  /// Entries the index holds (nodes matched, with usable values).
  uint64_t entry_count = 0;
  /// Approximate distinct keys.
  uint64_t distinct_keys = 0;
  /// Size in bytes.
  uint64_t size_bytes = 0;
  /// Leaf pages.
  uint64_t leaf_pages = 1;
  /// Height in levels.
  uint32_t levels = 1;
  /// Average key byte length.
  double avg_key_length = 8.0;
  /// Numeric value range covered (numeric indexes).
  double min_numeric = 0.0;
  double max_numeric = 0.0;
  /// String value range covered (string indexes).
  std::string min_string;
  std::string max_string;
  /// Equi-depth histogram over numeric keys (see PathStats).
  std::vector<double> numeric_quantiles;
};

/// Computes equi-depth quantile boundaries (buckets+1 values) from a
/// weighted sample. Returns empty if the sample is empty or buckets == 0.
std::vector<double> WeightedQuantiles(
    std::vector<std::pair<double, double>> weighted_values, size_t buckets);

/// Fraction of a distribution described by `quantiles` (equi-depth
/// boundaries) that is < v (continuous interpolation within buckets).
double HistogramCdf(const std::vector<double>& quantiles, double v);

/// Per-collection data statistics.
class CollectionStatistics {
 public:
  CollectionStatistics() = default;

  /// Collection knobs.
  struct CollectOptions {
    /// Distinct values tracked exactly per path before extrapolating.
    size_t distinct_cap = 100000;
    /// Equi-depth histogram buckets per path (0 disables histograms and
    /// reverts range selectivity to the uniform assumption).
    size_t histogram_buckets = 16;
    /// Reservoir-sample size per path used to build histograms.
    size_t sample_cap = 2048;
    /// Sampling seed (deterministic statistics for reproducible plans).
    uint64_t seed = 1;
  };

  /// Walks every live document of `collection` and records per-path
  /// statistics. Distinct-value counts are tracked exactly per path up to
  /// `distinct_cap` distinct values, then extrapolated linearly — the same
  /// flavour of approximation RUNSTATS sampling introduces.
  void Collect(const Collection& collection, const CollectOptions& options);
  void Collect(const Collection& collection) { Collect(collection, {}); }

  /// Number of live documents at collection time.
  uint64_t document_count() const { return document_count_; }
  /// Total nodes at collection time.
  uint64_t node_count() const { return node_count_; }
  /// Data pages at collection time.
  uint64_t data_pages() const { return data_pages_; }
  /// Average nodes per document.
  double avg_nodes_per_doc() const {
    return document_count_ == 0 ? 0.0
                                : static_cast<double>(node_count_) /
                                      static_cast<double>(document_count_);
  }

  /// All recorded path statistics, keyed by "/a/b/c" strings.
  const std::map<std::string, PathStats>& paths() const { return paths_; }

  /// Sum of PathStats matched by `pattern` folded into index statistics for
  /// an index of the given value type. This is the virtual-index statistics
  /// derivation of §III.
  IndexStats DeriveIndexStats(const xpath::IndexPattern& pattern,
                              const CostConstants& cc) const;

  /// Estimated number of nodes (per whole collection) reachable by
  /// `pattern`, regardless of value type.
  double EstimatePathCardinality(const xpath::Path& pattern) const;

 private:
  uint64_t document_count_ = 0;
  uint64_t node_count_ = 0;
  uint64_t data_pages_ = 0;
  std::map<std::string, PathStats> paths_;
};

/// Statistics for every collection in a store.
class StatisticsCatalog {
 public:
  /// Runs Collect for one collection and stores the result (replacing any
  /// previous statistics for it).
  void RunStats(const Collection& collection);
  void RunStats(const Collection& collection,
                const CollectionStatistics::CollectOptions& options);

  /// Statistics for a collection; NotFound if RunStats was never called.
  Result<const CollectionStatistics*> Get(const std::string& collection) const;

 private:
  std::map<std::string, CollectionStatistics> stats_;
};

}  // namespace xia::storage

#endif  // XIA_STORAGE_STATISTICS_H_
