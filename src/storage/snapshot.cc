#include "storage/snapshot.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "fault/fault.h"
#include "util/atomic_file.h"
#include "util/crc32.h"

namespace xia::storage {

namespace {

constexpr char kMagicV1[8] = {'X', 'I', 'A', 'S', 'N', 'A', 'P', '1'};
constexpr char kMagicV2[8] = {'X', 'I', 'A', 'S', 'N', 'A', 'P', '2'};

constexpr uint32_t kMaxString = 64u << 20;   // 64 MiB per string
constexpr uint32_t kMaxSection = 1u << 30;   // 1 GiB per collection section

void WriteU8(std::ostream& out, uint8_t v) {
  out.put(static_cast<char>(v));
}

void WriteU32(std::ostream& out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(buf, 4);
}

void WriteI32(std::ostream& out, int32_t v) {
  WriteU32(out, static_cast<uint32_t>(v));
}

void WriteString(std::ostream& out, const std::string& s) {
  WriteU32(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool ReadU8(std::istream& in, uint8_t* v) {
  const int c = in.get();
  if (c == EOF) return false;
  *v = static_cast<uint8_t>(c);
  return true;
}

bool ReadU32(std::istream& in, uint32_t* v) {
  char buf[4];
  if (!in.read(buf, 4)) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(static_cast<unsigned char>(buf[i]))
          << (8 * i);
  }
  return true;
}

bool ReadI32(std::istream& in, int32_t* v) {
  uint32_t u = 0;
  if (!ReadU32(in, &u)) return false;
  *v = static_cast<int32_t>(u);
  return true;
}

bool ReadString(std::istream& in, std::string* s, uint32_t max_len) {
  uint32_t len = 0;
  if (!ReadU32(in, &len)) return false;
  if (len > max_len) return false;  // corrupt or hostile
  s->resize(len);
  return static_cast<bool>(in.read(s->data(),
                                   static_cast<std::streamsize>(len)));
}

/// Serializes one collection body: str name, u32 slot_count, slots.
/// Shared between the v2 section payload and nothing else (v1 wrote the
/// same bytes inline, which is why v2 sections parse with the same code).
Status WriteCollectionBody(const Collection& coll, std::ostream& out) {
  WriteString(out, coll.name());
  const xml::DocId bound = coll.id_bound();
  WriteU32(out, static_cast<uint32_t>(bound));
  for (xml::DocId id = 0; id < bound; ++id) {
    if (!coll.IsLive(id)) {
      WriteU8(out, 0);
      continue;
    }
    WriteU8(out, 1);
    const xml::Document& doc = coll.Get(id);
    WriteU32(out, static_cast<uint32_t>(doc.size()));
    for (size_t n = 0; n < doc.size(); ++n) {
      const xml::Node& node = doc.node(static_cast<xml::NodeIndex>(n));
      WriteU8(out, static_cast<uint8_t>(node.kind));
      WriteString(out, node.label);
      WriteString(out, node.value);
      WriteI32(out, node.parent);
    }
  }
  if (!out) return Status::Internal("snapshot write failed");
  return Status::OK();
}

/// Parses one collection body (name + slots) from `in` into `store`.
Status ReadCollectionBody(std::istream& in, DocumentStore* store) {
  std::string name;
  if (!ReadString(in, &name, kMaxString) || name.empty()) {
    return Status::ParseError("bad collection name");
  }
  XIA_ASSIGN_OR_RETURN(Collection * coll, store->CreateCollection(name));
  uint32_t slots = 0;
  if (!ReadU32(in, &slots)) return Status::ParseError("bad slot count");
  for (uint32_t s = 0; s < slots; ++s) {
    uint8_t live = 0;
    if (!ReadU8(in, &live)) return Status::ParseError("truncated slot");
    if (!live) {
      coll->AddTombstone();
      continue;
    }
    uint32_t node_count = 0;
    if (!ReadU32(in, &node_count)) {
      return Status::ParseError("bad node count");
    }
    xml::Document doc;
    for (uint32_t n = 0; n < node_count; ++n) {
      uint8_t kind = 0;
      std::string label;
      std::string value;
      int32_t parent = 0;
      if (!ReadU8(in, &kind) || !ReadString(in, &label, kMaxString) ||
          !ReadString(in, &value, kMaxString) || !ReadI32(in, &parent)) {
        return Status::ParseError("truncated node record");
      }
      if (kind > static_cast<uint8_t>(xml::NodeKind::kAttribute)) {
        return Status::ParseError("bad node kind");
      }
      // Nodes are stored parent-before-child, so rebuilding in order is
      // valid. The first node must be the root.
      if (n == 0) {
        if (parent != xml::kInvalidNode) {
          return Status::ParseError("first node must be the root");
        }
        doc.AddRoot(label);
        doc.SetValue(0, value);
      } else {
        if (parent < 0 || static_cast<uint32_t>(parent) >= n) {
          return Status::ParseError("node parent out of order");
        }
        if (static_cast<xml::NodeKind>(kind) == xml::NodeKind::kElement) {
          doc.AddElement(parent, label, value);
        } else {
          if (label.empty() || label[0] != '@') {
            return Status::ParseError("attribute label must start with @");
          }
          doc.AddAttribute(parent, label.substr(1), value);
        }
      }
    }
    if (doc.empty()) return Status::ParseError("empty live document");
    coll->Add(std::move(doc));
  }
  return Status::OK();
}

/// v2 body: per-collection CRC-framed sections, then EOF.
Status LoadV2Body(std::istream& in, DocumentStore* staging) {
  uint32_t collections = 0;
  if (!ReadU32(in, &collections)) {
    return Status::ParseError("truncated snapshot header");
  }
  for (uint32_t c = 0; c < collections; ++c) {
    uint32_t len = 0;
    if (!ReadU32(in, &len)) {
      return Status::ParseError("truncated section header");
    }
    if (len > kMaxSection) {
      return Status::ParseError("snapshot section too large");
    }
    std::string payload(len, '\0');
    if (!in.read(payload.data(), static_cast<std::streamsize>(len))) {
      return Status::DataLoss("truncated snapshot section");
    }
    uint32_t stored_crc = 0;
    if (!ReadU32(in, &stored_crc)) {
      return Status::DataLoss("truncated section checksum");
    }
    const uint32_t actual_crc = Crc32(payload);
    if (actual_crc != stored_crc) {
      return Status::DataLoss("snapshot section checksum mismatch");
    }
    std::istringstream body(payload);
    XIA_RETURN_IF_ERROR(ReadCollectionBody(body, staging));
    if (body.peek() != EOF) {
      return Status::ParseError("trailing bytes in snapshot section");
    }
  }
  if (in.peek() != EOF) {
    return Status::ParseError("trailing bytes after snapshot");
  }
  return Status::OK();
}

/// Legacy v1 body: unframed collection bodies back to back.
Status LoadV1Body(std::istream& in, DocumentStore* staging) {
  uint32_t collections = 0;
  if (!ReadU32(in, &collections)) {
    return Status::ParseError("truncated snapshot header");
  }
  for (uint32_t c = 0; c < collections; ++c) {
    XIA_RETURN_IF_ERROR(ReadCollectionBody(in, staging));
  }
  if (in.peek() != EOF) {
    return Status::ParseError("trailing bytes after snapshot");
  }
  return Status::OK();
}

}  // namespace

Status SaveSnapshot(const DocumentStore& store, std::ostream& out) {
  XIA_FAULT_INJECT(fault::points::kSnapshotWrite);
  out.write(kMagicV2, sizeof(kMagicV2));
  const std::vector<std::string> names = store.CollectionNames();
  WriteU32(out, static_cast<uint32_t>(names.size()));
  for (const std::string& name : names) {
    auto coll = store.GetCollection(name);
    if (!coll.ok()) return coll.status();
    std::ostringstream section;
    XIA_RETURN_IF_ERROR(WriteCollectionBody(**coll, section));
    const std::string payload = section.str();
    if (payload.size() > kMaxSection) {
      return Status::ResourceExhausted("collection too large for snapshot: " +
                                       name);
    }
    WriteU32(out, static_cast<uint32_t>(payload.size()));
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    WriteU32(out, Crc32(payload));
  }
  if (!out) return Status::Internal("snapshot write failed");
  return Status::OK();
}

Status SaveSnapshotToFile(const DocumentStore& store,
                          const std::string& path) {
  // Stage-and-rename: a crash mid-save never clobbers the previous good
  // file.
  std::ostringstream out;
  XIA_RETURN_IF_ERROR(SaveSnapshot(store, out));
  return WriteFileAtomic(path, out.str());
}

Status LoadSnapshot(std::istream& in, DocumentStore* store) {
  XIA_FAULT_INJECT(fault::points::kSnapshotRead);
  if (!store->CollectionNames().empty()) {
    return Status::FailedPrecondition(
        "snapshot must be loaded into an empty store");
  }
  char magic[sizeof(kMagicV2)];
  if (!in.read(magic, sizeof(magic))) {
    return Status::ParseError("not a XIA snapshot (bad magic)");
  }
  // All parsing targets a staging store; `store` is swapped in only after
  // the whole stream verified and parsed, so a corrupt snapshot can never
  // leave it partially populated.
  DocumentStore staging;
  if (std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0) {
    XIA_RETURN_IF_ERROR(LoadV2Body(in, &staging));
  } else if (std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) == 0) {
    XIA_RETURN_IF_ERROR(LoadV1Body(in, &staging));
  } else {
    return Status::ParseError("not a XIA snapshot (bad magic)");
  }
  store->Swap(&staging);
  return Status::OK();
}

Status LoadSnapshotFromFile(const std::string& path, DocumentStore* store) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open snapshot " + path);
  return LoadSnapshot(in, store);
}

}  // namespace xia::storage
