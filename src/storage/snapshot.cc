#include "storage/snapshot.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace xia::storage {

namespace {

constexpr char kMagic[8] = {'X', 'I', 'A', 'S', 'N', 'A', 'P', '1'};

void WriteU8(std::ostream& out, uint8_t v) {
  out.put(static_cast<char>(v));
}

void WriteU32(std::ostream& out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(buf, 4);
}

void WriteI32(std::ostream& out, int32_t v) {
  WriteU32(out, static_cast<uint32_t>(v));
}

void WriteString(std::ostream& out, const std::string& s) {
  WriteU32(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool ReadU8(std::istream& in, uint8_t* v) {
  const int c = in.get();
  if (c == EOF) return false;
  *v = static_cast<uint8_t>(c);
  return true;
}

bool ReadU32(std::istream& in, uint32_t* v) {
  char buf[4];
  if (!in.read(buf, 4)) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(static_cast<unsigned char>(buf[i]))
          << (8 * i);
  }
  return true;
}

bool ReadI32(std::istream& in, int32_t* v) {
  uint32_t u = 0;
  if (!ReadU32(in, &u)) return false;
  *v = static_cast<int32_t>(u);
  return true;
}

bool ReadString(std::istream& in, std::string* s, uint32_t max_len) {
  uint32_t len = 0;
  if (!ReadU32(in, &len)) return false;
  if (len > max_len) return false;  // corrupt or hostile
  s->resize(len);
  return static_cast<bool>(in.read(s->data(),
                                   static_cast<std::streamsize>(len)));
}

constexpr uint32_t kMaxString = 64u << 20;  // 64 MiB per string

}  // namespace

Status SaveSnapshot(const DocumentStore& store, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  const std::vector<std::string> names = store.CollectionNames();
  WriteU32(out, static_cast<uint32_t>(names.size()));
  for (const std::string& name : names) {
    auto coll = store.GetCollection(name);
    if (!coll.ok()) return coll.status();
    WriteString(out, name);
    const xml::DocId bound = (*coll)->id_bound();
    WriteU32(out, static_cast<uint32_t>(bound));
    for (xml::DocId id = 0; id < bound; ++id) {
      if (!(*coll)->IsLive(id)) {
        WriteU8(out, 0);
        continue;
      }
      WriteU8(out, 1);
      const xml::Document& doc = (*coll)->Get(id);
      WriteU32(out, static_cast<uint32_t>(doc.size()));
      for (size_t n = 0; n < doc.size(); ++n) {
        const xml::Node& node = doc.node(static_cast<xml::NodeIndex>(n));
        WriteU8(out, static_cast<uint8_t>(node.kind));
        WriteString(out, node.label);
        WriteString(out, node.value);
        WriteI32(out, node.parent);
      }
    }
  }
  if (!out) return Status::Internal("snapshot write failed");
  return Status::OK();
}

Status SaveSnapshotToFile(const DocumentStore& store,
                          const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  return SaveSnapshot(store, out);
}

Status LoadSnapshot(std::istream& in, DocumentStore* store) {
  if (!store->CollectionNames().empty()) {
    return Status::FailedPrecondition(
        "snapshot must be loaded into an empty store");
  }
  char magic[sizeof(kMagic)];
  if (!in.read(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError("not a XIA snapshot (bad magic)");
  }
  uint32_t collections = 0;
  if (!ReadU32(in, &collections)) {
    return Status::ParseError("truncated snapshot header");
  }
  for (uint32_t c = 0; c < collections; ++c) {
    std::string name;
    if (!ReadString(in, &name, kMaxString) || name.empty()) {
      return Status::ParseError("bad collection name");
    }
    XIA_ASSIGN_OR_RETURN(Collection * coll, store->CreateCollection(name));
    uint32_t slots = 0;
    if (!ReadU32(in, &slots)) return Status::ParseError("bad slot count");
    for (uint32_t s = 0; s < slots; ++s) {
      uint8_t live = 0;
      if (!ReadU8(in, &live)) return Status::ParseError("truncated slot");
      if (!live) {
        coll->AddTombstone();
        continue;
      }
      uint32_t node_count = 0;
      if (!ReadU32(in, &node_count)) {
        return Status::ParseError("bad node count");
      }
      xml::Document doc;
      for (uint32_t n = 0; n < node_count; ++n) {
        uint8_t kind = 0;
        std::string label;
        std::string value;
        int32_t parent = 0;
        if (!ReadU8(in, &kind) || !ReadString(in, &label, kMaxString) ||
            !ReadString(in, &value, kMaxString) || !ReadI32(in, &parent)) {
          return Status::ParseError("truncated node record");
        }
        if (kind > static_cast<uint8_t>(xml::NodeKind::kAttribute)) {
          return Status::ParseError("bad node kind");
        }
        // Nodes are stored parent-before-child, so rebuilding in order is
        // valid. The first node must be the root.
        if (n == 0) {
          if (parent != xml::kInvalidNode) {
            return Status::ParseError("first node must be the root");
          }
          doc.AddRoot(label);
          doc.SetValue(0, value);
        } else {
          if (parent < 0 || static_cast<uint32_t>(parent) >= n) {
            return Status::ParseError("node parent out of order");
          }
          if (static_cast<xml::NodeKind>(kind) == xml::NodeKind::kElement) {
            doc.AddElement(parent, label, value);
          } else {
            if (label.empty() || label[0] != '@') {
              return Status::ParseError("attribute label must start with @");
            }
            doc.AddAttribute(parent, label.substr(1), value);
          }
        }
      }
      if (doc.empty()) return Status::ParseError("empty live document");
      coll->Add(std::move(doc));
    }
  }
  return Status::OK();
}

Status LoadSnapshotFromFile(const std::string& path, DocumentStore* store) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open snapshot " + path);
  return LoadSnapshot(in, store);
}

}  // namespace xia::storage
