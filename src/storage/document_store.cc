#include "storage/document_store.h"

#include <cassert>

#include "obs/metrics.h"

namespace xia::storage {

xml::DocId Collection::Add(xml::Document doc) {
  XIA_OBS_COUNT("xia.storage.store.doc_inserts", 1);
  total_bytes_ += doc.ApproximateByteSize();
  total_nodes_ += doc.size();
  ++live_count_;
  docs_.push_back(std::make_unique<xml::Document>(std::move(doc)));
  return static_cast<xml::DocId>(docs_.size() - 1);
}

Status Collection::Remove(xml::DocId id) {
  if (!IsLive(id)) {
    return Status::NotFound("no live document with id " +
                            std::to_string(id));
  }
  auto& slot = docs_[static_cast<size_t>(id)];
  total_bytes_ -= slot->ApproximateByteSize();
  total_nodes_ -= slot->size();
  --live_count_;
  slot.reset();
  XIA_OBS_COUNT("xia.storage.store.doc_removes", 1);
  return Status::OK();
}

bool Collection::IsLive(xml::DocId id) const {
  return id >= 0 && static_cast<size_t>(id) < docs_.size() &&
         docs_[static_cast<size_t>(id)] != nullptr;
}

const xml::Document& Collection::Get(xml::DocId id) const {
  assert(IsLive(id));
  XIA_OBS_COUNT("xia.storage.store.doc_fetches", 1);
  return *docs_[static_cast<size_t>(id)];
}

Result<Collection*> DocumentStore::CreateCollection(const std::string& name) {
  auto [it, inserted] =
      collections_.emplace(name, std::make_unique<Collection>(name));
  if (!inserted) {
    return Status::AlreadyExists("collection " + name + " exists");
  }
  return it->second.get();
}

Result<Collection*> DocumentStore::GetCollection(const std::string& name) {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    return Status::NotFound("collection " + name + " not found");
  }
  return it->second.get();
}

Result<const Collection*> DocumentStore::GetCollection(
    const std::string& name) const {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    return Status::NotFound("collection " + name + " not found");
  }
  return static_cast<const Collection*>(it->second.get());
}

std::vector<std::string> DocumentStore::CollectionNames() const {
  std::vector<std::string> names;
  names.reserve(collections_.size());
  for (const auto& [name, _] : collections_) names.push_back(name);
  return names;
}

}  // namespace xia::storage
