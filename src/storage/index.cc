#include "storage/index.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <iterator>
#include <limits>

#include "fault/fault.h"
#include "obs/metrics.h"
#include "util/crc32.h"
#include "util/string_util.h"
#include "xpath/evaluator.h"

namespace xia::storage {

namespace {

// Bytes a key's value contributes to the size model (mirrors the
// incremental path's accounting exactly).
double KeyBytes(const xpath::IndexPattern& pattern, const IndexKey& key) {
  if (pattern.structural) return 0.0;
  return pattern.type == xpath::ValueType::kNumeric
             ? 8.0
             : static_cast<double>(key.str.size());
}

}  // namespace

void PathValueIndex::Build(const Collection& coll) {
  coll.ForEach([&](xml::DocId id, const xml::Document& doc) {
    Apply(id, doc, /*insert=*/true);
  });
}

void PathValueIndex::ExtractKeys(xml::DocId id, const xml::Document& doc,
                                 std::vector<IndexKey>* out) const {
  // One scratch buffer per worker: extraction runs over whole
  // collections, and a fresh vector per document is measurable there.
  static thread_local std::vector<xml::NodeIndex> scratch;
  xpath::EvaluateLinearInto(doc, pattern_.path, &scratch);
  for (xml::NodeIndex n : scratch) {
    const std::string& value = doc.node(n).value;
    IndexKey key;
    key.type = pattern_.type;
    key.rid = {id, n};
    if (pattern_.structural) {
      // Structural entries index reachability only: every matched node,
      // valued or not, keyed by the RID alone (empty value key).
      key.type = xpath::ValueType::kString;
    } else if (value.empty()) {
      continue;
    } else if (pattern_.type == xpath::ValueType::kNumeric) {
      double num = 0.0;
      if (!ParseDouble(value, &num)) continue;  // reject invalid values
      key.num = num;
    } else {
      key.str = value;
    }
    out->push_back(std::move(key));
  }
}

void PathValueIndex::InsertKey(const IndexKey& key) {
  if (!tree_.Insert(key)) return;
  key_bytes_sum_ += KeyBytes(pattern_, key);
  if (pattern_.type == xpath::ValueType::kNumeric) {
    ++numeric_counts_[key.num];
  } else {
    ++string_counts_[key.str];
  }
}

void PathValueIndex::EraseKey(const IndexKey& key) {
  if (!tree_.Erase(key)) return;
  key_bytes_sum_ -= KeyBytes(pattern_, key);
  if (pattern_.type == xpath::ValueType::kNumeric) {
    auto it = numeric_counts_.find(key.num);
    if (it != numeric_counts_.end() && --it->second == 0) {
      numeric_counts_.erase(it);
    }
  } else {
    auto it = string_counts_.find(key.str);
    if (it != string_counts_.end() && --it->second == 0) {
      string_counts_.erase(it);
    }
  }
}

void PathValueIndex::BuildBulk(const Collection& coll,
                               util::ThreadPool* pool) {
  // Snapshot the live ids so extraction can index into fixed slots.
  std::vector<xml::DocId> ids;
  ids.reserve(coll.live_count());
  coll.ForEach(
      [&](xml::DocId id, const xml::Document&) { ids.push_back(id); });

  // Per-chunk extraction into disjoint slots: embarrassingly parallel and
  // deterministic regardless of worker scheduling (chunk c covers a fixed
  // contiguous id range, and chunks concatenate in order). Chunking
  // matters: ParallelFor dispatches each item through an atomic counter
  // and a std::function call, which swamps the work when the unit is one
  // small document.
  constexpr size_t kExtractChunk = 256;
  const size_t chunks = (ids.size() + kExtractChunk - 1) / kExtractChunk;
  std::vector<std::vector<IndexKey>> slots(chunks);
  auto extract = [&](size_t c) {
    const size_t begin = c * kExtractChunk;
    const size_t end = std::min(begin + kExtractChunk, ids.size());
    for (size_t i = begin; i < end; ++i) {
      ExtractKeys(ids[i], coll.Get(ids[i]), &slots[c]);
    }
    return Status::OK();
  };
  bool parallel_ok = false;
  if (pool != nullptr && chunks > 1) {
    parallel_ok = pool->ParallelFor(chunks, extract).ok();
  }
  if (!parallel_ok) {
    for (size_t c = 0; c < chunks; ++c) extract(c);
  }

  size_t total = 0;
  for (const auto& slot : slots) total += slot.size();
  std::vector<IndexKey> all;
  all.reserve(total);
  for (auto& slot : slots) {
    std::move(slot.begin(), slot.end(), std::back_inserter(all));
    slot.clear();
    slot.shrink_to_fit();
  }
  BulkLoadKeys(std::move(all));
}

void PathValueIndex::BuildBulkMany(const Collection& coll,
                                   const std::vector<PathValueIndex*>& indexes,
                                   util::ThreadPool* pool) {
  if (indexes.empty()) return;
  std::vector<xml::DocId> ids;
  ids.reserve(coll.live_count());
  coll.ForEach(
      [&](xml::DocId id, const xml::Document&) { ids.push_back(id); });

  // Same chunked-slot scheme as BuildBulk, but slots are per (chunk,
  // index): one pass over the documents feeds every index, so a store
  // larger than cache is pulled through memory once instead of
  // indexes.size() times.
  constexpr size_t kExtractChunk = 256;
  const size_t chunks = (ids.size() + kExtractChunk - 1) / kExtractChunk;
  std::vector<std::vector<std::vector<IndexKey>>> slots(chunks);
  auto extract = [&](size_t c) {
    slots[c].resize(indexes.size());
    const size_t begin = c * kExtractChunk;
    const size_t end = std::min(begin + kExtractChunk, ids.size());
    for (size_t i = begin; i < end; ++i) {
      const xml::Document& doc = coll.Get(ids[i]);
      for (size_t x = 0; x < indexes.size(); ++x) {
        indexes[x]->ExtractKeys(ids[i], doc, &slots[c][x]);
      }
    }
    return Status::OK();
  };
  bool parallel_ok = false;
  if (pool != nullptr && chunks > 1) {
    parallel_ok = pool->ParallelFor(chunks, extract).ok();
  }
  if (!parallel_ok) {
    for (size_t c = 0; c < chunks; ++c) extract(c);
  }

  for (size_t x = 0; x < indexes.size(); ++x) {
    size_t total = 0;
    for (const auto& chunk : slots) total += chunk[x].size();
    std::vector<IndexKey> all;
    all.reserve(total);
    for (auto& chunk : slots) {
      std::move(chunk[x].begin(), chunk[x].end(), std::back_inserter(all));
      chunk[x].clear();
      chunk[x].shrink_to_fit();
    }
    indexes[x]->BulkLoadKeys(std::move(all));
  }
}

namespace {

// A u64 "normalized key" that agrees with IndexKey::operator< whenever
// two prefixes differ; equal prefixes fall back to the full comparator.
// Sorting 12-byte (prefix, index) pairs and re-sorting only the tie runs
// is far cheaper than pushing whole IndexKeys through std::sort.
uint64_t NormalizedPrefix(const IndexKey& key) {
  if (key.type == xpath::ValueType::kNumeric) {
    // Order-preserving u64 encoding of a double: flip all bits of
    // negatives, set the sign bit of non-negatives. -0.0 collapses to
    // +0.0 first so comparator-equal keys get bit-equal prefixes.
    const double d = key.num == 0.0 ? 0.0 : key.num;
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return (bits & 0x8000000000000000ull) ? ~bits
                                          : bits | 0x8000000000000000ull;
  }
  // First eight bytes, big-endian, zero-padded: u64 order equals
  // lexicographic order on the prefix, and a short string's zero padding
  // sorts it before any longer string sharing its prefix.
  uint64_t prefix = 0;
  const size_t n = std::min<size_t>(key.str.size(), 8);
  for (size_t i = 0; i < n; ++i) {
    prefix |= static_cast<uint64_t>(static_cast<unsigned char>(key.str[i]))
              << (56 - 8 * i);
  }
  return prefix;
}

}  // namespace

void PathValueIndex::BulkLoadKeys(std::vector<IndexKey> all) {
  // Normalized-key sort: order (prefix, index) pairs by prefix alone,
  // then re-sort each run of equal prefixes with the full comparator and
  // gather the keys through the resulting permutation.
  std::vector<std::pair<uint64_t, uint32_t>> order(all.size());
  for (uint32_t i = 0; i < all.size(); ++i) {
    order[i] = {NormalizedPrefix(all[i]), i};
  }
  std::sort(order.begin(), order.end(),
            [](const std::pair<uint64_t, uint32_t>& a,
               const std::pair<uint64_t, uint32_t>& b) {
              return a.first < b.first;
            });
  for (size_t i = 0; i < order.size();) {
    size_t j = i + 1;
    while (j < order.size() && order[j].first == order[i].first) ++j;
    if (j - i > 1) {
      std::sort(order.begin() + static_cast<ptrdiff_t>(i),
                order.begin() + static_cast<ptrdiff_t>(j),
                [&all](const std::pair<uint64_t, uint32_t>& a,
                       const std::pair<uint64_t, uint32_t>& b) {
                  return all[a.second] < all[b.second];
                });
    }
    i = j;
  }
  std::vector<IndexKey> sorted;
  sorted.reserve(all.size());
  for (const auto& [prefix, index] : order) {
    sorted.push_back(std::move(all[index]));
  }
  all = std::move(sorted);

  // (value, rid) keys are unique within a document (EvaluateLinear
  // dedupes node hits) and rids differ across documents, but mirror the
  // incremental path's duplicate tolerance anyway.
  all.erase(std::unique(all.begin(), all.end(),
                        [](const IndexKey& a, const IndexKey& b) {
                          return !(a < b) && !(b < a);
                        }),
            all.end());

  // Rebuild the derived accounting in one ordered pass, then pack the
  // tree bottom-up. Sorted input means equal values sit in adjacent
  // runs, so each distinct value is hint-inserted at the map's end in
  // amortized O(1) instead of an O(log n) walk per key.
  key_bytes_sum_ = 0.0;
  numeric_counts_.clear();
  string_counts_.clear();
  for (size_t i = 0; i < all.size();) {
    size_t j = i;
    if (pattern_.type == xpath::ValueType::kNumeric) {
      const double value = all[i].num;
      while (j < all.size() && all[j].num == value) ++j;
      numeric_counts_.emplace_hint(numeric_counts_.end(), value,
                                   static_cast<uint32_t>(j - i));
    } else {
      const std::string& value = all[i].str;
      while (j < all.size() && all[j].str == value) ++j;
      string_counts_.emplace_hint(string_counts_.end(), value,
                                  static_cast<uint32_t>(j - i));
    }
    key_bytes_sum_ +=
        KeyBytes(pattern_, all[i]) * static_cast<double>(j - i);
    i = j;
  }
  const bool loaded = tree_.BulkLoad(std::move(all));
  (void)loaded;
  assert(loaded);  // strictly increasing by construction
  XIA_OBS_GAUGE_SET("xia.storage.btree.height", tree_.height());
}

uint32_t PathValueIndex::ContentDigest() const {
  uint32_t crc = 0;
  auto feed = [&crc](const void* data, size_t size) {
    crc = Crc32Update(crc, data, size);
  };
  for (auto it = tree_.Begin(); it.valid(); it.Next()) {
    const IndexKey& k = it.key();
    const uint8_t type = static_cast<uint8_t>(k.type);
    feed(&type, 1);
    uint64_t num_bits = 0;
    static_assert(sizeof(num_bits) == sizeof(k.num));
    std::memcpy(&num_bits, &k.num, sizeof(num_bits));
    feed(&num_bits, sizeof(num_bits));
    const uint32_t len = static_cast<uint32_t>(k.str.size());
    feed(&len, sizeof(len));
    feed(k.str.data(), k.str.size());
    const int32_t doc = k.rid.doc;
    const int32_t node = k.rid.node;
    feed(&doc, sizeof(doc));
    feed(&node, sizeof(node));
  }
  return crc;
}

void PathValueIndex::OnInsert(xml::DocId id, const xml::Document& doc) {
  Apply(id, doc, /*insert=*/true);
}

void PathValueIndex::OnRemove(xml::DocId id, const xml::Document& doc) {
  Apply(id, doc, /*insert=*/false);
}

void PathValueIndex::Apply(xml::DocId id, const xml::Document& doc,
                           bool insert) {
  // B+-tree observability is accounted here at the index boundary rather
  // than inside the tree template, so the tree's hot paths compile
  // identically with and without instrumentation.
  const size_t leaves_before = tree_.leaf_count();
  const size_t internals_before = tree_.internal_count();
  std::vector<IndexKey> keys;
  ExtractKeys(id, doc, &keys);
  for (const IndexKey& key : keys) {
    if (insert) {
      InsertKey(key);
    } else {
      EraseKey(key);
    }
  }
  if (insert) {
    // Each maintenance descent touches height_ nodes; page-count deltas
    // reveal how many splits the batch of insertions caused.
    XIA_OBS_COUNT("xia.storage.btree.leaf_splits",
                  tree_.leaf_count() - leaves_before);
    XIA_OBS_COUNT("xia.storage.btree.internal_splits",
                  tree_.internal_count() - internals_before);
    XIA_OBS_GAUGE_SET("xia.storage.btree.height", tree_.height());
  }
}

Result<IndexLookupResult> PathValueIndex::LookupAll() const {
  XIA_FAULT_INJECT(fault::points::kIndexLookup);
  IndexLookupResult out;
  const void* last_page = nullptr;
  for (auto it = tree_.Begin(); it.valid(); it.Next()) {
    if (it.page() != last_page) {
      ++out.leaf_pages_touched;
      last_page = it.page();
    }
    out.rids.push_back(it.key().rid);
  }
  XIA_OBS_COUNT("xia.storage.index.probes", 1);
  XIA_OBS_COUNT("xia.storage.index.entries_scanned", out.rids.size());
  XIA_OBS_COUNT("xia.storage.index.leaf_pages", out.leaf_pages_touched);
  XIA_OBS_COUNT("xia.storage.btree.node_reads",
                tree_.height() + (out.leaf_pages_touched > 0
                                      ? out.leaf_pages_touched - 1
                                      : 0));
  return out;
}

Result<IndexLookupResult> PathValueIndex::Lookup(
    xpath::CompareOp op, const xpath::Literal& literal) const {
  XIA_FAULT_INJECT(fault::points::kIndexLookup);
  if (pattern_.structural) {
    return Status::InvalidArgument(
        "structural index " + name_ + " cannot serve value comparisons");
  }
  if (literal.type != pattern_.type) {
    return Status::InvalidArgument(
        "literal type does not match index type for " + name_);
  }
  if (op == xpath::CompareOp::kNe) {
    return Status::InvalidArgument("index cannot serve '!=' predicates");
  }

  // Compute the scan start key and the in-range test.
  IndexKey start;
  start.type = pattern_.type;
  start.rid = {std::numeric_limits<xml::DocId>::min(),
               std::numeric_limits<xml::NodeIndex>::min()};

  const bool numeric = pattern_.type == xpath::ValueType::kNumeric;
  const double nv = literal.numeric_value;
  const std::string& sv = literal.string_value;

  switch (op) {
    case xpath::CompareOp::kEq:
    case xpath::CompareOp::kGe:
    case xpath::CompareOp::kGt:
      if (numeric) {
        start.num = nv;
      } else {
        start.str = sv;
      }
      break;
    case xpath::CompareOp::kLt:
    case xpath::CompareOp::kLe:
      // Scan from the beginning of the index.
      if (numeric) {
        start.num = -std::numeric_limits<double>::infinity();
      } else {
        start.str.clear();
      }
      break;
    case xpath::CompareOp::kNe:
      break;  // unreachable
  }

  auto in_range = [&](const IndexKey& k) {
    switch (op) {
      case xpath::CompareOp::kEq:
        return numeric ? k.num == nv : k.str == sv;
      case xpath::CompareOp::kGe:
        return true;  // started at literal, everything after qualifies
      case xpath::CompareOp::kGt:
        return numeric ? k.num > nv : k.str > sv;
      case xpath::CompareOp::kLt:
        return numeric ? k.num < nv : k.str < sv;
      case xpath::CompareOp::kLe:
        return numeric ? k.num <= nv : k.str <= sv;
      case xpath::CompareOp::kNe:
        return false;
    }
    return false;
  };
  // For kGt the scan starts at the literal; skip equal keys. For kLt/kLe
  // the scan stops at the first out-of-range key.
  const bool stop_on_miss =
      op == xpath::CompareOp::kEq || op == xpath::CompareOp::kLt ||
      op == xpath::CompareOp::kLe;

  IndexLookupResult out;
  const void* last_page = nullptr;
  for (auto it = tree_.LowerBound(start); it.valid(); it.Next()) {
    const IndexKey& k = it.key();
    if (it.page() != last_page) {
      ++out.leaf_pages_touched;
      last_page = it.page();
    }
    if (in_range(k)) {
      out.rids.push_back(k.rid);
    } else if (stop_on_miss) {
      break;
    }
    // kGt: equal keys at the start fail in_range but the scan continues.
  }
  XIA_OBS_COUNT("xia.storage.index.probes", 1);
  XIA_OBS_COUNT("xia.storage.index.entries_scanned", out.rids.size());
  XIA_OBS_COUNT("xia.storage.index.leaf_pages", out.leaf_pages_touched);
  // One root-to-leaf descent plus the chained leaves walked past the first.
  XIA_OBS_COUNT("xia.storage.btree.node_reads",
                tree_.height() + (out.leaf_pages_touched > 0
                                      ? out.leaf_pages_touched - 1
                                      : 0));
  return out;
}

IndexStats PathValueIndex::ActualStats(const CostConstants& cc) const {
  IndexStats stats;
  stats.entry_count = tree_.size();
  if (pattern_.type == xpath::ValueType::kNumeric && !pattern_.structural) {
    stats.distinct_keys = numeric_counts_.size();
    if (!numeric_counts_.empty()) {
      stats.min_numeric = numeric_counts_.begin()->first;
      stats.max_numeric = numeric_counts_.rbegin()->first;
      // Exact equi-depth histogram from the maintained value counts, so
      // real indexes estimate at least as well as virtual ones.
      std::vector<std::pair<double, double>> weighted;
      weighted.reserve(numeric_counts_.size());
      for (const auto& [value, count] : numeric_counts_) {
        weighted.emplace_back(value, static_cast<double>(count));
      }
      stats.numeric_quantiles = WeightedQuantiles(std::move(weighted), 16);
    }
  } else {
    stats.distinct_keys = string_counts_.size();
    if (!string_counts_.empty()) {
      stats.min_string = string_counts_.begin()->first;
      stats.max_string = string_counts_.rbegin()->first;
    }
  }
  stats.avg_key_length =
      tree_.empty() ? 8.0
                    : key_bytes_sum_ / static_cast<double>(tree_.size());
  stats.size_bytes = static_cast<uint64_t>(std::ceil(
      (stats.avg_key_length + static_cast<double>(cc.index_entry_overhead)) *
      static_cast<double>(stats.entry_count)));
  stats.leaf_pages = std::max<size_t>(1, tree_.leaf_count());
  stats.levels = static_cast<uint32_t>(tree_.height());
  return stats;
}

BulkIngestor::BulkIngestor(Collection* coll,
                           std::vector<PathValueIndex*> indexes)
    : coll_(coll), indexes_(std::move(indexes)), keys_(indexes_.size()) {}

xml::DocId BulkIngestor::Add(xml::Document doc) {
  const xml::DocId id = coll_->Add(std::move(doc));
  const xml::Document& stored = coll_->Get(id);
  for (size_t x = 0; x < indexes_.size(); ++x) {
    indexes_[x]->ExtractKeys(id, stored, &keys_[x]);
  }
  return id;
}

void BulkIngestor::Finish() {
  for (size_t x = 0; x < indexes_.size(); ++x) {
    indexes_[x]->BulkLoadKeys(std::move(keys_[x]));
    keys_[x].clear();
  }
}

}  // namespace xia::storage
