#include "storage/index.h"

#include <cmath>
#include <limits>

#include "fault/fault.h"
#include "obs/metrics.h"
#include "util/string_util.h"
#include "xpath/evaluator.h"

namespace xia::storage {

void PathValueIndex::Build(const Collection& coll) {
  coll.ForEach([&](xml::DocId id, const xml::Document& doc) {
    Apply(id, doc, /*insert=*/true);
  });
}

void PathValueIndex::OnInsert(xml::DocId id, const xml::Document& doc) {
  Apply(id, doc, /*insert=*/true);
}

void PathValueIndex::OnRemove(xml::DocId id, const xml::Document& doc) {
  Apply(id, doc, /*insert=*/false);
}

void PathValueIndex::Apply(xml::DocId id, const xml::Document& doc,
                           bool insert) {
  // B+-tree observability is accounted here at the index boundary rather
  // than inside the tree template, so the tree's hot paths compile
  // identically with and without instrumentation.
  const size_t leaves_before = tree_.leaf_count();
  const size_t internals_before = tree_.internal_count();
  for (xml::NodeIndex n : xpath::EvaluateLinear(doc, pattern_.path)) {
    const std::string& value = doc.node(n).value;
    IndexKey key;
    key.type = pattern_.type;
    key.rid = {id, n};
    if (pattern_.structural) {
      // Structural entries index reachability only: every matched node,
      // valued or not, keyed by the RID alone (empty value key).
      key.type = xpath::ValueType::kString;
    } else if (value.empty()) {
      continue;
    } else if (pattern_.type == xpath::ValueType::kNumeric) {
      double num = 0.0;
      if (!ParseDouble(value, &num)) continue;  // reject invalid values
      key.num = num;
    } else {
      key.str = value;
    }
    const double key_bytes =
        pattern_.structural
            ? 0.0
            : (pattern_.type == xpath::ValueType::kNumeric
                   ? 8.0
                   : static_cast<double>(key.str.size()));
    if (insert) {
      if (tree_.Insert(key)) {
        key_bytes_sum_ += key_bytes;
        if (pattern_.type == xpath::ValueType::kNumeric) {
          ++numeric_counts_[key.num];
        } else {
          ++string_counts_[key.str];
        }
      }
    } else {
      if (tree_.Erase(key)) {
        key_bytes_sum_ -= key_bytes;
        if (pattern_.type == xpath::ValueType::kNumeric) {
          auto it = numeric_counts_.find(key.num);
          if (it != numeric_counts_.end() && --it->second == 0) {
            numeric_counts_.erase(it);
          }
        } else {
          auto it = string_counts_.find(key.str);
          if (it != string_counts_.end() && --it->second == 0) {
            string_counts_.erase(it);
          }
        }
      }
    }
  }
  if (insert) {
    // Each maintenance descent touches height_ nodes; page-count deltas
    // reveal how many splits the batch of insertions caused.
    XIA_OBS_COUNT("xia.storage.btree.leaf_splits",
                  tree_.leaf_count() - leaves_before);
    XIA_OBS_COUNT("xia.storage.btree.internal_splits",
                  tree_.internal_count() - internals_before);
    XIA_OBS_GAUGE_SET("xia.storage.btree.height", tree_.height());
  }
}

Result<IndexLookupResult> PathValueIndex::LookupAll() const {
  XIA_FAULT_INJECT(fault::points::kIndexLookup);
  IndexLookupResult out;
  const void* last_page = nullptr;
  for (auto it = tree_.Begin(); it.valid(); it.Next()) {
    if (it.page() != last_page) {
      ++out.leaf_pages_touched;
      last_page = it.page();
    }
    out.rids.push_back(it.key().rid);
  }
  XIA_OBS_COUNT("xia.storage.index.probes", 1);
  XIA_OBS_COUNT("xia.storage.index.entries_scanned", out.rids.size());
  XIA_OBS_COUNT("xia.storage.index.leaf_pages", out.leaf_pages_touched);
  XIA_OBS_COUNT("xia.storage.btree.node_reads",
                tree_.height() + (out.leaf_pages_touched > 0
                                      ? out.leaf_pages_touched - 1
                                      : 0));
  return out;
}

Result<IndexLookupResult> PathValueIndex::Lookup(
    xpath::CompareOp op, const xpath::Literal& literal) const {
  XIA_FAULT_INJECT(fault::points::kIndexLookup);
  if (pattern_.structural) {
    return Status::InvalidArgument(
        "structural index " + name_ + " cannot serve value comparisons");
  }
  if (literal.type != pattern_.type) {
    return Status::InvalidArgument(
        "literal type does not match index type for " + name_);
  }
  if (op == xpath::CompareOp::kNe) {
    return Status::InvalidArgument("index cannot serve '!=' predicates");
  }

  // Compute the scan start key and the in-range test.
  IndexKey start;
  start.type = pattern_.type;
  start.rid = {std::numeric_limits<xml::DocId>::min(),
               std::numeric_limits<xml::NodeIndex>::min()};

  const bool numeric = pattern_.type == xpath::ValueType::kNumeric;
  const double nv = literal.numeric_value;
  const std::string& sv = literal.string_value;

  switch (op) {
    case xpath::CompareOp::kEq:
    case xpath::CompareOp::kGe:
    case xpath::CompareOp::kGt:
      if (numeric) {
        start.num = nv;
      } else {
        start.str = sv;
      }
      break;
    case xpath::CompareOp::kLt:
    case xpath::CompareOp::kLe:
      // Scan from the beginning of the index.
      if (numeric) {
        start.num = -std::numeric_limits<double>::infinity();
      } else {
        start.str.clear();
      }
      break;
    case xpath::CompareOp::kNe:
      break;  // unreachable
  }

  auto in_range = [&](const IndexKey& k) {
    switch (op) {
      case xpath::CompareOp::kEq:
        return numeric ? k.num == nv : k.str == sv;
      case xpath::CompareOp::kGe:
        return true;  // started at literal, everything after qualifies
      case xpath::CompareOp::kGt:
        return numeric ? k.num > nv : k.str > sv;
      case xpath::CompareOp::kLt:
        return numeric ? k.num < nv : k.str < sv;
      case xpath::CompareOp::kLe:
        return numeric ? k.num <= nv : k.str <= sv;
      case xpath::CompareOp::kNe:
        return false;
    }
    return false;
  };
  // For kGt the scan starts at the literal; skip equal keys. For kLt/kLe
  // the scan stops at the first out-of-range key.
  const bool stop_on_miss =
      op == xpath::CompareOp::kEq || op == xpath::CompareOp::kLt ||
      op == xpath::CompareOp::kLe;

  IndexLookupResult out;
  const void* last_page = nullptr;
  for (auto it = tree_.LowerBound(start); it.valid(); it.Next()) {
    const IndexKey& k = it.key();
    if (it.page() != last_page) {
      ++out.leaf_pages_touched;
      last_page = it.page();
    }
    if (in_range(k)) {
      out.rids.push_back(k.rid);
    } else if (stop_on_miss) {
      break;
    }
    // kGt: equal keys at the start fail in_range but the scan continues.
  }
  XIA_OBS_COUNT("xia.storage.index.probes", 1);
  XIA_OBS_COUNT("xia.storage.index.entries_scanned", out.rids.size());
  XIA_OBS_COUNT("xia.storage.index.leaf_pages", out.leaf_pages_touched);
  // One root-to-leaf descent plus the chained leaves walked past the first.
  XIA_OBS_COUNT("xia.storage.btree.node_reads",
                tree_.height() + (out.leaf_pages_touched > 0
                                      ? out.leaf_pages_touched - 1
                                      : 0));
  return out;
}

IndexStats PathValueIndex::ActualStats(const CostConstants& cc) const {
  IndexStats stats;
  stats.entry_count = tree_.size();
  if (pattern_.type == xpath::ValueType::kNumeric && !pattern_.structural) {
    stats.distinct_keys = numeric_counts_.size();
    if (!numeric_counts_.empty()) {
      stats.min_numeric = numeric_counts_.begin()->first;
      stats.max_numeric = numeric_counts_.rbegin()->first;
      // Exact equi-depth histogram from the maintained value counts, so
      // real indexes estimate at least as well as virtual ones.
      std::vector<std::pair<double, double>> weighted;
      weighted.reserve(numeric_counts_.size());
      for (const auto& [value, count] : numeric_counts_) {
        weighted.emplace_back(value, static_cast<double>(count));
      }
      stats.numeric_quantiles = WeightedQuantiles(std::move(weighted), 16);
    }
  } else {
    stats.distinct_keys = string_counts_.size();
    if (!string_counts_.empty()) {
      stats.min_string = string_counts_.begin()->first;
      stats.max_string = string_counts_.rbegin()->first;
    }
  }
  stats.avg_key_length =
      tree_.empty() ? 8.0
                    : key_bytes_sum_ / static_cast<double>(tree_.size());
  stats.size_bytes = static_cast<uint64_t>(std::ceil(
      (stats.avg_key_length + static_cast<double>(cc.index_entry_overhead)) *
      static_cast<double>(stats.entry_count)));
  stats.leaf_pages = std::max<size_t>(1, tree_.leaf_count());
  stats.levels = static_cast<uint32_t>(tree_.height());
  return stats;
}

}  // namespace xia::storage
