#include "storage/statistics.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/random.h"
#include "util/string_util.h"
#include "xpath/containment.h"

namespace xia::storage {

std::string PathStats::PathString() const {
  std::string out;
  for (const auto& l : labels) {
    out += '/';
    out += l;
  }
  return out;
}

namespace {

// Mutable accumulation state per path during collection.
struct PathAccum {
  PathStats stats;
  std::unordered_set<std::string> distinct;
  std::unordered_set<std::string> distinct_numeric;
  double value_length_sum = 0.0;
  bool distinct_saturated = false;
  bool distinct_numeric_saturated = false;
  // Reservoir sample of numeric values for the histogram.
  std::vector<double> numeric_sample;
  uint64_t numeric_seen = 0;
};

}  // namespace

std::vector<double> WeightedQuantiles(
    std::vector<std::pair<double, double>> weighted_values, size_t buckets) {
  if (buckets == 0 || weighted_values.empty()) return {};
  std::sort(weighted_values.begin(), weighted_values.end());
  double total = 0;
  for (const auto& [v, w] : weighted_values) total += w;
  if (total <= 0) return {};

  std::vector<double> out;
  out.reserve(buckets + 1);
  out.push_back(weighted_values.front().first);
  double cum = 0;
  size_t i = 0;
  for (size_t b = 1; b < buckets; ++b) {
    const double target = total * static_cast<double>(b) /
                          static_cast<double>(buckets);
    while (i < weighted_values.size() &&
           cum + weighted_values[i].second < target) {
      cum += weighted_values[i].second;
      ++i;
    }
    out.push_back(weighted_values[std::min(i, weighted_values.size() - 1)]
                      .first);
  }
  out.push_back(weighted_values.back().first);
  return out;
}

double HistogramCdf(const std::vector<double>& quantiles, double v) {
  if (quantiles.size() < 2) return 0.5;
  const size_t buckets = quantiles.size() - 1;
  if (v <= quantiles.front()) return 0.0;
  if (v >= quantiles.back()) return 1.0;
  for (size_t b = 0; b < buckets; ++b) {
    const double lo = quantiles[b];
    const double hi = quantiles[b + 1];
    if (v < hi || (v == hi && hi == lo)) {
      const double within = hi > lo ? (v - lo) / (hi - lo) : 1.0;
      return (static_cast<double>(b) + within) /
             static_cast<double>(buckets);
    }
  }
  return 1.0;
}

void CollectionStatistics::Collect(const Collection& collection,
                                   const CollectOptions& options) {
  const size_t distinct_cap = options.distinct_cap;
  Random sampler(options.seed);
  paths_.clear();
  document_count_ = collection.live_count();
  node_count_ = collection.total_nodes();
  data_pages_ = collection.pages(DefaultCostConstants());

  std::map<std::string, PathAccum> accum;

  collection.ForEach([&](xml::DocId, const xml::Document& doc) {
    // Compute each node's path string incrementally from its parent's
    // (nodes are stored parent-before-child).
    std::vector<std::string> node_paths(doc.size());
    for (size_t i = 0; i < doc.size(); ++i) {
      const xml::Node& n = doc.node(static_cast<xml::NodeIndex>(i));
      const std::string& parent_path =
          n.parent == xml::kInvalidNode ? std::string()
                                        : node_paths[static_cast<size_t>(
                                              n.parent)];
      node_paths[i] = parent_path + "/" + n.label;

      PathAccum& pa = accum[node_paths[i]];
      if (pa.stats.count == 0) {
        pa.stats.labels = doc.LabelPath(static_cast<xml::NodeIndex>(i));
      }
      ++pa.stats.count;
      if (!n.value.empty()) {
        ++pa.stats.valued_count;
        pa.value_length_sum += static_cast<double>(n.value.size());
        if (!pa.distinct_saturated) {
          pa.distinct.insert(n.value);
          if (pa.distinct.size() >= distinct_cap) {
            pa.distinct_saturated = true;
          }
        }
        if (pa.stats.valued_count == 1) {
          pa.stats.min_string = n.value;
          pa.stats.max_string = n.value;
        } else {
          if (n.value < pa.stats.min_string) pa.stats.min_string = n.value;
          if (n.value > pa.stats.max_string) pa.stats.max_string = n.value;
        }
        double num = 0.0;
        if (ParseDouble(n.value, &num)) {
          if (pa.stats.numeric_count == 0) {
            pa.stats.min_numeric = num;
            pa.stats.max_numeric = num;
          } else {
            pa.stats.min_numeric = std::min(pa.stats.min_numeric, num);
            pa.stats.max_numeric = std::max(pa.stats.max_numeric, num);
          }
          ++pa.stats.numeric_count;
          if (!pa.distinct_numeric_saturated) {
            pa.distinct_numeric.insert(n.value);
            if (pa.distinct_numeric.size() >= distinct_cap) {
              pa.distinct_numeric_saturated = true;
            }
          }
          // Reservoir sampling for the histogram.
          if (options.histogram_buckets > 0) {
            ++pa.numeric_seen;
            if (pa.numeric_sample.size() < options.sample_cap) {
              pa.numeric_sample.push_back(num);
            } else {
              const uint64_t slot = sampler.Uniform(pa.numeric_seen);
              if (slot < options.sample_cap) {
                pa.numeric_sample[slot] = num;
              }
            }
          }
        }
      }
    }
  });

  for (auto& [path, pa] : accum) {
    PathStats s = std::move(pa.stats);
    // Saturated distinct sets are extrapolated proportionally to the number
    // of valued nodes — crude, like sampled RUNSTATS.
    if (pa.distinct_saturated) {
      s.distinct_values = std::max<uint64_t>(
          pa.distinct.size(),
          static_cast<uint64_t>(static_cast<double>(s.valued_count) * 0.9));
    } else {
      s.distinct_values = pa.distinct.size();
    }
    if (pa.distinct_numeric_saturated) {
      s.distinct_numeric = std::max<uint64_t>(
          pa.distinct_numeric.size(),
          static_cast<uint64_t>(static_cast<double>(s.numeric_count) * 0.9));
    } else {
      s.distinct_numeric = pa.distinct_numeric.size();
    }
    s.avg_value_length =
        s.valued_count == 0
            ? 0.0
            : pa.value_length_sum / static_cast<double>(s.valued_count);
    if (options.histogram_buckets > 0 && !pa.numeric_sample.empty()) {
      std::vector<std::pair<double, double>> weighted;
      weighted.reserve(pa.numeric_sample.size());
      for (double v : pa.numeric_sample) weighted.emplace_back(v, 1.0);
      s.numeric_quantiles =
          WeightedQuantiles(std::move(weighted), options.histogram_buckets);
    }
    paths_.emplace(path, std::move(s));
  }
}

IndexStats CollectionStatistics::DeriveIndexStats(
    const xpath::IndexPattern& pattern, const CostConstants& cc) const {
  IndexStats out;
  out.entry_count = 0;
  out.distinct_keys = 0;
  double key_length_weighted = 0.0;
  bool any = false;
  // Distinct-key estimation: concrete paths ending in the same label
  // usually draw from one value domain (e.g. Sector under each of the
  // SecInfo/*Information variants), so within such a group the union of
  // distincts is approximated by the group's maximum rather than the sum.
  std::map<std::string, uint64_t> distinct_by_last_label;
  // Pool of per-path histogram boundaries, weighted by how many values
  // each boundary represents, for the merged index histogram.
  std::vector<std::pair<double, double>> histogram_pool;
  size_t histogram_buckets = 0;

  for (const auto& [path_string, stats] : paths_) {
    if (!xpath::MatchesLabelPath(pattern.path, stats.labels)) continue;
    const std::string& last_label =
        stats.labels.empty() ? std::string() : stats.labels.back();
    uint64_t entries = 0;
    if (pattern.structural) {
      // Every reachable node is an entry; the key is the RID alone.
      entries = stats.count;
      distinct_by_last_label[last_label] += stats.count;
    } else if (pattern.type == xpath::ValueType::kNumeric) {
      entries = stats.numeric_count;
      uint64_t& group = distinct_by_last_label[last_label];
      group = std::max(group, stats.distinct_numeric);
      key_length_weighted += 8.0 * static_cast<double>(entries);
      if (!stats.numeric_quantiles.empty() && entries > 0) {
        const double weight =
            static_cast<double>(entries) /
            static_cast<double>(stats.numeric_quantiles.size());
        for (double q : stats.numeric_quantiles) {
          histogram_pool.emplace_back(q, weight);
        }
        histogram_buckets = std::max(histogram_buckets,
                                     stats.numeric_quantiles.size() - 1);
      }
      if (entries > 0) {
        if (!any || stats.min_numeric < out.min_numeric) {
          out.min_numeric = stats.min_numeric;
        }
        if (!any || stats.max_numeric > out.max_numeric) {
          out.max_numeric = stats.max_numeric;
        }
      }
    } else {
      entries = stats.valued_count;
      uint64_t& group = distinct_by_last_label[last_label];
      group = std::max(group, stats.distinct_values);
      key_length_weighted +=
          stats.avg_value_length * static_cast<double>(entries);
      if (entries > 0) {
        if (!any || stats.min_string < out.min_string) {
          out.min_string = stats.min_string;
        }
        if (!any || stats.max_string > out.max_string) {
          out.max_string = stats.max_string;
        }
      }
    }
    if (entries > 0) any = true;
    out.entry_count += entries;
  }
  for (const auto& [label, distinct] : distinct_by_last_label) {
    out.distinct_keys += distinct;
  }
  if (!histogram_pool.empty()) {
    out.numeric_quantiles =
        WeightedQuantiles(std::move(histogram_pool), histogram_buckets);
  }

  out.avg_key_length =
      out.entry_count == 0
          ? 8.0
          : key_length_weighted / static_cast<double>(out.entry_count);
  const double entry_bytes =
      out.avg_key_length + static_cast<double>(cc.index_entry_overhead);
  out.size_bytes = static_cast<uint64_t>(
      std::ceil(entry_bytes * static_cast<double>(out.entry_count)));
  out.leaf_pages = std::max<uint64_t>(
      1, out.size_bytes / cc.page_size +
             (out.size_bytes % cc.page_size != 0 ? 1 : 0));
  // Height: levels above the leaves shrink by the assumed fanout.
  out.levels = 1;
  uint64_t pages = out.leaf_pages;
  while (pages > 1) {
    pages = (pages + cc.assumed_fanout - 1) / cc.assumed_fanout;
    ++out.levels;
  }
  return out;
}

double CollectionStatistics::EstimatePathCardinality(
    const xpath::Path& pattern) const {
  double total = 0.0;
  for (const auto& [path_string, stats] : paths_) {
    if (xpath::MatchesLabelPath(pattern, stats.labels)) {
      total += static_cast<double>(stats.count);
    }
  }
  return total;
}

void StatisticsCatalog::RunStats(const Collection& collection) {
  stats_[collection.name()].Collect(collection);
}

void StatisticsCatalog::RunStats(
    const Collection& collection,
    const CollectionStatistics::CollectOptions& options) {
  stats_[collection.name()].Collect(collection, options);
}

Result<const CollectionStatistics*> StatisticsCatalog::Get(
    const std::string& collection) const {
  auto it = stats_.find(collection);
  if (it == stats_.end()) {
    return Status::NotFound("no statistics for collection " + collection +
                            "; run RunStats first");
  }
  return &it->second;
}

}  // namespace xia::storage
