#include "storage/btree.h"

#include <cstdint>

namespace xia::storage {

// Smoke instantiation so template errors surface when the library builds,
// not only when a client instantiates.
template class BTree<int64_t>;

}  // namespace xia::storage
