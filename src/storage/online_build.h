// Online (non-blocking) index construction.
//
// Adopting an advisor recommendation must not stall traffic: a full
// CREATE INDEX under the server's exclusive lock blocks every reader and
// writer for the duration of the build. The online build instead runs as a
// state machine — snapshot -> side-log -> catch-up -> swap:
//
//   1. snapshot  — under a brief exclusive section, record the collection's
//     id bound and attach an IndexSideLog to the catalog, so every
//     subsequent mutation's index entries are captured as they happen.
//   2. scan      — extract keys from all documents below the bound in
//     chunks, re-acquiring a *shared* lock per chunk: readers run
//     concurrently, writers interleave between chunks.
//   3. bulk load — sort the extracted keys and pack the B+-tree bottom-up,
//     outside any lock.
//   4. catch-up  — drain and replay the side log without a lock until the
//     tail is short.
//   5. swap      — one short exclusive section: drain the remaining tail,
//     detach the side log, fire the kIndexBuildSwap fault point, run the
//     caller's commit hook (the WAL append slot — the build's durability
//     point), and install the finished index into the catalog.
//
// Crash safety: the build publishes nothing until the commit hook's WAL
// record lands inside the swap section. A crash at any earlier point
// leaves no trace — the side-logged mutations themselves are WAL-logged by
// their own commits, and recovery simply replays a world in which the
// index was never created. A failure at any point detaches the side log
// and leaves the catalog untouched.
//
// The write-stall window an online build imposes on traffic is exactly the
// swap section (plus the brief snapshot section), reported per build in
// OnlineBuildReport::exclusive_seconds.

#ifndef XIA_STORAGE_ONLINE_BUILD_H_
#define XIA_STORAGE_ONLINE_BUILD_H_

#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "storage/index.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "xml/document.h"
#include "xpath/path.h"

namespace xia::storage {

class Catalog;
struct IndexDef;

/// Captures the index entries of mutations that race an online build.
/// Entries are extracted eagerly at record time (under the mutator's
/// exclusive db lock, via Catalog::Notify*) because the document may be
/// gone or rewritten by the time the builder replays; replay then needs no
/// access to the store at all. Appends and drains are serialized by the
/// log's own mutex, so the builder drains without holding the db lock.
class IndexSideLog {
 public:
  struct Op {
    bool insert = true;
    IndexKey key;
  };

  /// `target` supplies the pattern to extract under; it is the
  /// builder-private index, used read-only here.
  explicit IndexSideLog(const PathValueIndex* target) : target_(target) {}

  void RecordInsert(xml::DocId id, const xml::Document& doc) {
    Record(true, id, doc);
  }
  void RecordRemove(xml::DocId id, const xml::Document& doc) {
    Record(false, id, doc);
  }

  /// Removes and returns every pending op, in append order.
  std::vector<Op> Drain();

  /// Ops currently pending.
  size_t pending() const;
  /// Total ops ever recorded (for reporting).
  size_t recorded_total() const;

 private:
  void Record(bool insert, xml::DocId id, const xml::Document& doc);

  const PathValueIndex* target_;
  mutable std::mutex mu_;
  std::vector<Op> ops_;
  size_t recorded_total_ = 0;
};

struct OnlineBuildOptions {
  /// Parallelizes per-chunk key extraction when non-null.
  util::ThreadPool* pool = nullptr;
  /// Documents scanned per shared-lock acquisition. Smaller chunks yield
  /// to writers more often; larger chunks amortize lock traffic.
  size_t scan_chunk_docs = 512;
  /// Side-log tail size at or below which the builder stops lock-free
  /// catch-up and takes the exclusive swap section.
  size_t catchup_threshold = 128;
  /// Bound on lock-free catch-up rounds (a write storm could otherwise
  /// starve the swap forever).
  size_t max_catchup_rounds = 64;
};

struct OnlineBuildReport {
  double total_seconds = 0.0;
  /// The write-stall window: time spent holding the exclusive lock
  /// (snapshot + swap sections).
  double exclusive_seconds = 0.0;
  size_t docs_scanned = 0;
  size_t delta_ops_applied = 0;
  size_t catchup_rounds = 0;
};

/// Builds index `name` over `collection` and installs it into `catalog`
/// without holding `db_mu` for the duration — see the state machine above.
/// `db_mu` must be the same lock that serializes every reader/mutator of
/// the catalog and store (the server's db_mu_). `commit` (nullable) runs
/// inside the final exclusive section after the swap fault point and
/// before the install — the WAL append slot; a non-OK return aborts the
/// build with the catalog untouched.
Result<const IndexDef*> BuildIndexOnline(
    Catalog* catalog, std::shared_mutex* db_mu, const std::string& name,
    const std::string& collection, const xpath::IndexPattern& pattern,
    const OnlineBuildOptions& options = {},
    const std::function<Status()>& commit = nullptr,
    OnlineBuildReport* report = nullptr);

}  // namespace xia::storage

#endif  // XIA_STORAGE_ONLINE_BUILD_H_
