// The index catalog: real and virtual index definitions.
//
// The optimizer plans against the catalog. The advisor's what-if machinery
// populates it with *virtual* indexes — catalog entries with derived
// statistics but no physical structure (§III). Virtual indexes participate
// in index matching and costing exactly like real ones, but cannot be
// executed against; the Executor refuses plans that reference them.

#ifndef XIA_STORAGE_CATALOG_H_
#define XIA_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "storage/cost_constants.h"
#include "storage/document_store.h"
#include "storage/index.h"
#include "storage/statistics.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "xpath/path.h"

namespace xia::storage {

class IndexSideLog;

/// A catalog entry describing one (real or virtual) index.
struct IndexDef {
  std::string name;
  std::string collection;
  xpath::IndexPattern pattern;
  bool is_virtual = false;
  /// Physical statistics (real indexes) or statistics derived from data
  /// statistics (virtual indexes).
  IndexStats stats;
  /// Physical structure; null for virtual indexes.
  std::unique_ptr<PathValueIndex> physical;
};

/// Registry of indexes over a DocumentStore.
class Catalog {
 public:
  Catalog(DocumentStore* store, const StatisticsCatalog* statistics,
          const CostConstants& cc = DefaultCostConstants())
      : store_(store), statistics_(statistics), cc_(cc) {}

  /// Creates and builds a physical index through the bulk-load fast path
  /// (parallel key extraction when `pool` is non-null). Fails if the name
  /// exists or the collection is unknown.
  Result<const IndexDef*> CreateIndex(const std::string& name,
                                      const std::string& collection,
                                      const xpath::IndexPattern& pattern,
                                      util::ThreadPool* pool = nullptr);

  /// Installs an already-built physical index — the online build's swap
  /// step. Fails (leaving the catalog untouched) if the name now exists
  /// or the collection is unknown.
  Result<const IndexDef*> InstallIndex(std::unique_ptr<PathValueIndex> built);

  /// Attaches a side log that captures the index entries of every
  /// mutation on `collection` until detached. Attach/detach and the
  /// Notify* calls must be serialized by the caller (the server's
  /// exclusive db lock); the side log's own mutex covers builder drains.
  void AttachSideLog(const std::string& collection, IndexSideLog* log);
  void DetachSideLog(const IndexSideLog* log);
  /// Number of attached side logs (== in-flight online builds).
  size_t attached_side_logs() const { return side_logs_.size(); }

  /// Creates a virtual index whose statistics are derived from the
  /// collection's data statistics (RunStats must have been run).
  Result<const IndexDef*> CreateVirtualIndex(const std::string& name,
                                             const std::string& collection,
                                             const xpath::IndexPattern& pattern);

  /// Drops an index by name.
  Status DropIndex(const std::string& name);

  /// Drops every virtual index (used between what-if probes).
  void DropAllVirtualIndexes();

  /// Replaces this catalog's entries with `other`'s, moving the physical
  /// structures over (PathValueIndex is self-contained, so built indexes
  /// transfer between catalogs). `other` is left empty. Used by WAL
  /// recovery, which rebuilds state in a staging store + catalog and then
  /// swaps both in; pair with DocumentStore::Swap.
  void AdoptIndexesFrom(Catalog* other);

  /// All indexes (real and virtual) over a collection.
  std::vector<const IndexDef*> IndexesFor(const std::string& collection) const;

  /// Index by name.
  Result<const IndexDef*> Get(const std::string& name) const;

  /// Mutable access to a real index's physical structure for maintenance.
  Result<PathValueIndex*> GetPhysical(const std::string& name);

  /// Notifies every real index on `collection` of a document change.
  void NotifyInsert(const std::string& collection, xml::DocId id,
                    const xml::Document& doc);
  void NotifyRemove(const std::string& collection, xml::DocId id,
                    const xml::Document& doc);

  size_t size() const { return indexes_.size(); }
  const CostConstants& cost_constants() const { return cc_; }
  DocumentStore* store() { return store_; }
  const StatisticsCatalog* statistics() const { return statistics_; }

 private:
  DocumentStore* store_;
  const StatisticsCatalog* statistics_;
  CostConstants cc_;
  std::map<std::string, IndexDef> indexes_;
  // Side logs of in-flight online builds: (collection, log).
  std::vector<std::pair<std::string, IndexSideLog*>> side_logs_;
};

}  // namespace xia::storage

#endif  // XIA_STORAGE_CATALOG_H_
