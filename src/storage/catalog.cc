#include "storage/catalog.h"

#include "fault/fault.h"
#include "obs/metrics.h"
#include "storage/online_build.h"
#include "util/stopwatch.h"

namespace xia::storage {

Result<const IndexDef*> Catalog::CreateIndex(
    const std::string& name, const std::string& collection,
    const xpath::IndexPattern& pattern, util::ThreadPool* pool) {
  XIA_FAULT_INJECT(fault::points::kIndexBuild);
  if (indexes_.count(name) != 0) {
    return Status::AlreadyExists("index " + name + " exists");
  }
  auto coll = store_->GetCollection(collection);
  if (!coll.ok()) return coll.status();

  // Physical index construction allocates B-tree nodes; the alloc fault
  // point models that allocation failing before any pages are built.
  XIA_FAULT_INJECT(fault::points::kBtreeAlloc);

  Stopwatch sw;
  IndexDef def;
  def.name = name;
  def.collection = collection;
  def.pattern = pattern;
  def.is_virtual = false;
  def.physical = std::make_unique<PathValueIndex>(name, collection, pattern);
  def.physical->BuildBulk(**coll, pool);
  def.stats = def.physical->ActualStats(cc_);
  XIA_OBS_COUNT("xia.storage.catalog.indexes_created", 1);
  XIA_OBS_COUNT("xia.storage.index.builds_offline", 1);
  XIA_OBS_OBSERVE_LATENCY("xia.storage.index.build_seconds",
                          sw.ElapsedSeconds());
  auto [it, _] = indexes_.emplace(name, std::move(def));
  return &it->second;
}

Result<const IndexDef*> Catalog::InstallIndex(
    std::unique_ptr<PathValueIndex> built) {
  const std::string name = built->name();
  const std::string collection = built->collection();
  if (indexes_.count(name) != 0) {
    return Status::AlreadyExists("index " + name + " exists");
  }
  auto coll = store_->GetCollection(collection);
  if (!coll.ok()) return coll.status();

  IndexDef def;
  def.name = name;
  def.collection = collection;
  def.pattern = built->pattern();
  def.is_virtual = false;
  def.physical = std::move(built);
  def.stats = def.physical->ActualStats(cc_);
  XIA_OBS_COUNT("xia.storage.catalog.indexes_created", 1);
  auto [it, _] = indexes_.emplace(name, std::move(def));
  return &it->second;
}

void Catalog::AttachSideLog(const std::string& collection, IndexSideLog* log) {
  side_logs_.emplace_back(collection, log);
}

void Catalog::DetachSideLog(const IndexSideLog* log) {
  for (auto it = side_logs_.begin(); it != side_logs_.end(); ++it) {
    if (it->second == log) {
      side_logs_.erase(it);
      return;
    }
  }
}

Result<const IndexDef*> Catalog::CreateVirtualIndex(
    const std::string& name, const std::string& collection,
    const xpath::IndexPattern& pattern) {
  if (indexes_.count(name) != 0) {
    return Status::AlreadyExists("index " + name + " exists");
  }
  auto stats = statistics_->Get(collection);
  if (!stats.ok()) return stats.status();

  IndexDef def;
  def.name = name;
  def.collection = collection;
  def.pattern = pattern;
  def.is_virtual = true;
  def.stats = (*stats)->DeriveIndexStats(pattern, cc_);
  XIA_OBS_COUNT("xia.storage.catalog.virtual_indexes_created", 1);
  auto [it, _] = indexes_.emplace(name, std::move(def));
  return &it->second;
}

Status Catalog::DropIndex(const std::string& name) {
  if (indexes_.erase(name) == 0) {
    return Status::NotFound("index " + name + " not found");
  }
  return Status::OK();
}

void Catalog::DropAllVirtualIndexes() {
  for (auto it = indexes_.begin(); it != indexes_.end();) {
    if (it->second.is_virtual) {
      it = indexes_.erase(it);
    } else {
      ++it;
    }
  }
}

void Catalog::AdoptIndexesFrom(Catalog* other) {
  indexes_ = std::move(other->indexes_);
  other->indexes_.clear();
}

std::vector<const IndexDef*> Catalog::IndexesFor(
    const std::string& collection) const {
  std::vector<const IndexDef*> out;
  for (const auto& [_, def] : indexes_) {
    if (def.collection == collection) out.push_back(&def);
  }
  return out;
}

Result<const IndexDef*> Catalog::Get(const std::string& name) const {
  auto it = indexes_.find(name);
  if (it == indexes_.end()) {
    return Status::NotFound("index " + name + " not found");
  }
  return &it->second;
}

Result<PathValueIndex*> Catalog::GetPhysical(const std::string& name) {
  auto it = indexes_.find(name);
  if (it == indexes_.end()) {
    return Status::NotFound("index " + name + " not found");
  }
  if (it->second.is_virtual || it->second.physical == nullptr) {
    return Status::FailedPrecondition("index " + name + " is virtual");
  }
  return it->second.physical.get();
}

void Catalog::NotifyInsert(const std::string& collection, xml::DocId id,
                           const xml::Document& doc) {
  for (auto& [_, def] : indexes_) {
    if (!def.is_virtual && def.collection == collection) {
      def.physical->OnInsert(id, doc);
      def.stats = def.physical->ActualStats(cc_);
    }
  }
  for (auto& [coll, log] : side_logs_) {
    if (coll == collection) log->RecordInsert(id, doc);
  }
}

void Catalog::NotifyRemove(const std::string& collection, xml::DocId id,
                           const xml::Document& doc) {
  for (auto& [_, def] : indexes_) {
    if (!def.is_virtual && def.collection == collection) {
      def.physical->OnRemove(id, doc);
      def.stats = def.physical->ActualStats(cc_);
    }
  }
  for (auto& [coll, log] : side_logs_) {
    if (coll == collection) log->RecordRemove(id, doc);
  }
}

}  // namespace xia::storage
