#include "optimizer/optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "fault/fault.h"
#include "optimizer/selectivity.h"
#include "xpath/containment.h"

namespace xia::optimizer {

namespace {

// Crude node-count estimate for an unparsed document text: tags come in
// pairs, so '<' count halves.
double EstimateNodesFromText(const std::string& text) {
  double open = 0;
  for (char c : text) {
    if (c == '<') open += 1;
  }
  return std::max(1.0, open / 2.0);
}

}  // namespace

double Optimizer::EstimateResultDocs(
    const engine::NormalizedQuery& query,
    const storage::CollectionStatistics& data) const {
  const double ndocs = static_cast<double>(data.document_count());
  if (ndocs == 0) return 0;
  // Structural selectivity: fraction of documents containing the spine.
  const double spine_nodes = data.EstimatePathCardinality(query.path.Spine());
  double docs = std::min(ndocs, spine_nodes);
  // Each comparison predicate scales the qualifying-document estimate.
  for (const IndexablePredicate& pred : ExtractIndexablePredicates(query)) {
    const double sel = PredicateSelectivity(pred, data,
                                            cost_model_.constants());
    const double pattern_nodes =
        data.EstimatePathCardinality(pred.pattern);
    const double qualifying_nodes = pattern_nodes * sel;
    const double doc_sel = std::min(1.0, qualifying_nodes / ndocs);
    docs *= doc_sel;
  }
  return std::max(0.0, docs);
}

Result<Plan> Optimizer::PlanNormalizedQuery(
    const engine::NormalizedQuery& query, bool allow_indexes) const {
  auto data_result = statistics_->Get(query.collection);
  if (!data_result.ok()) return data_result.status();
  const storage::CollectionStatistics& data = **data_result;
  const double ndocs = static_cast<double>(data.document_count());

  Plan scan;
  scan.kind = Plan::Kind::kCollectionScan;
  scan.est_cost = cost_model_.CollectionScanCost(data, query);
  scan.est_result_docs = EstimateResultDocs(query, data);
  if (!allow_indexes) return scan;

  // Find the cheapest matching index per indexable predicate.
  std::vector<PlanLeg> legs;
  for (const IndexablePredicate& pred : ExtractIndexablePredicates(query)) {
    // Entries that truly satisfy the predicate, estimated against the
    // predicate pattern's own value distribution. Any covering index holds
    // at least these entries in the scanned value range, which keeps wide
    // indexes (whose huge distinct-key counts would otherwise dilute
    // equality selectivity) from looking cheaper than exact-match ones.
    const storage::IndexStats pattern_stats = data.DeriveIndexStats(
        pred.AsIndexPattern(), cost_model_.constants());
    const double pattern_entries =
        pred.existence
            ? static_cast<double>(pattern_stats.entry_count)
            : ValueSelectivity(pattern_stats, pred.op, pred.literal) *
                  static_cast<double>(pattern_stats.entry_count);

    const PlanLeg* best = nullptr;
    PlanLeg candidate;
    for (const storage::IndexDef* index :
         catalog_->IndexesFor(query.collection)) {
      if (index->is_virtual && !options_.use_virtual_indexes) continue;
      if (!index->is_virtual && !options_.use_real_indexes) continue;
      // Existence tests need a structural index; value comparisons need a
      // value index of the literal's type.
      if (index->pattern.structural != pred.existence) continue;
      if (!pred.existence && index->pattern.type != pred.type) continue;
      if (!xpath::Covers(index->pattern.path, pred.pattern)) continue;
      if (index->stats.entry_count == 0) continue;

      PlanLeg leg;
      leg.index_name = index->name;
      leg.index_pattern = index->pattern;
      leg.index_is_virtual = index->is_virtual;
      leg.predicate = pred;
      // Structural indexes have no value key: an existence probe scans the
      // whole index and filters RIDs by the residual, so it pays the full
      // entry count. Value probes seek into the covered range.
      const double sel =
          pred.existence
              ? 1.0
              : ValueSelectivity(index->stats, pred.op, pred.literal);
      leg.est_entries = std::max(
          {1.0, sel * static_cast<double>(index->stats.entry_count),
           pattern_entries});
      leg.est_docs = std::min(ndocs, leg.est_entries);
      leg.est_access_cost = cost_model_.IndexAccessCost(
          index->stats.levels, leg.est_entries, index->stats.avg_key_length);
      if (best == nullptr ||
          leg.est_access_cost +
                  cost_model_.FetchAndResidualCost(leg.est_docs, data, query) <
              candidate.est_access_cost +
                  cost_model_.FetchAndResidualCost(candidate.est_docs, data,
                                                   query)) {
        candidate = leg;
        best = &candidate;
      }
    }
    if (best != nullptr) legs.push_back(candidate);
  }

  Plan best_plan = scan;
  // The scan alternative plus one single-index plan per leg.
  XIA_OBS_COUNT("xia.optimizer.plans_considered", 1 + legs.size());

  // Single-index plans.
  for (const PlanLeg& leg : legs) {
    Plan p;
    p.kind = Plan::Kind::kIndexScan;
    p.legs = {leg};
    p.est_cost = leg.est_access_cost +
                 cost_model_.FetchAndResidualCost(leg.est_docs, data, query);
    p.est_result_docs = scan.est_result_docs;
    p.uses_virtual_index = leg.index_is_virtual;
    if (p.est_cost < best_plan.est_cost) best_plan = p;
  }

  // Index-ANDing: add legs most-selective first while the estimate keeps
  // improving. An unselective leg costs its access and intersection work
  // but barely shrinks the fetched document set, so the full-leg AND is
  // often not the best AND.
  if (options_.enable_index_anding && legs.size() >= 2) {
    std::vector<PlanLeg> ordered = legs;
    std::sort(ordered.begin(), ordered.end(),
              [](const PlanLeg& a, const PlanLeg& b) {
                return a.est_docs < b.est_docs;
              });
    Plan and_plan;
    and_plan.kind = Plan::Kind::kIndexAnd;
    double access = 0;
    double entries = 0;
    double doc_fraction = 1.0;
    double best_and_cost = std::numeric_limits<double>::infinity();
    std::vector<PlanLeg> best_and_legs;
    bool best_and_virtual = false;
    bool uses_virtual = false;
    for (const PlanLeg& leg : ordered) {
      access += leg.est_access_cost;
      entries += leg.est_entries;
      doc_fraction *= ndocs == 0 ? 0.0 : std::min(1.0, leg.est_docs / ndocs);
      uses_virtual = uses_virtual || leg.index_is_virtual;
      and_plan.legs.push_back(leg);
      if (and_plan.legs.size() < 2) continue;
      XIA_OBS_COUNT("xia.optimizer.plans_considered", 1);
      const double and_docs = ndocs * doc_fraction;
      const double cost =
          access + cost_model_.RidIntersectionCost(entries) +
          cost_model_.FetchAndResidualCost(and_docs, data, query);
      if (cost < best_and_cost) {
        best_and_cost = cost;
        best_and_legs = and_plan.legs;
        best_and_virtual = uses_virtual;
      }
    }
    if (!best_and_legs.empty() && best_and_cost < best_plan.est_cost) {
      Plan p;
      p.kind = Plan::Kind::kIndexAnd;
      p.legs = std::move(best_and_legs);
      p.est_cost = best_and_cost;
      p.est_result_docs = scan.est_result_docs;
      p.uses_virtual_index = best_and_virtual;
      best_plan = p;
    }
  }

  return best_plan;
}

Result<Plan> Optimizer::PlanInsert(const engine::Statement& statement) const {
  const engine::InsertSpec& ins = statement.insert_spec();
  Plan p;
  p.kind = Plan::Kind::kInsert;
  p.est_cost = cost_model_.DocumentInsertCost(
      static_cast<double>(ins.document_text.size()),
      EstimateNodesFromText(ins.document_text));
  p.est_result_docs = 1;
  return p;
}

Result<Plan> Optimizer::PlanDelete(const engine::Statement& statement,
                                   bool allow_indexes) const {
  auto normalized = engine::NormalizeDeleteMatch(statement);
  if (!normalized.ok()) return normalized.status();
  auto find_plan = PlanNormalizedQuery(*normalized, allow_indexes);
  if (!find_plan.ok()) return find_plan.status();

  auto data_result = statistics_->Get(normalized->collection);
  if (!data_result.ok()) return data_result.status();
  const storage::CollectionStatistics& data = **data_result;
  const double docs = find_plan->est_result_docs;
  const double avg_doc_bytes =
      data.document_count() == 0
          ? 0.0
          : static_cast<double>(data.data_pages()) *
                static_cast<double>(cost_model_.constants().page_size) /
                static_cast<double>(data.document_count());

  Plan p = *find_plan;
  p.kind = Plan::Kind::kDelete;
  p.est_cost += cost_model_.DocumentRemoveCost(docs, avg_doc_bytes);
  p.est_result_docs = docs;
  return p;
}

Result<Plan> Optimizer::PlanUpdate(const engine::Statement& statement,
                                   bool allow_indexes) const {
  auto normalized = engine::NormalizeUpdateMatch(statement);
  if (!normalized.ok()) return normalized.status();
  auto find_plan = PlanNormalizedQuery(*normalized, allow_indexes);
  if (!find_plan.ok()) return find_plan.status();

  auto data_result = statistics_->Get(normalized->collection);
  if (!data_result.ok()) return data_result.status();
  const storage::CollectionStatistics& data = **data_result;
  const double docs = find_plan->est_result_docs;
  // Modified nodes per touched document.
  const double target_nodes_per_doc =
      data.document_count() == 0
          ? 0.0
          : data.EstimatePathCardinality(statement.update_spec().target) /
                static_cast<double>(data.document_count());

  Plan p = *find_plan;
  p.kind = Plan::Kind::kUpdate;
  p.est_cost += docs * std::max(1.0, target_nodes_per_doc) *
                cost_model_.constants().index_write_cost;
  p.est_result_docs = docs;
  return p;
}

Result<Plan> Optimizer::OptimizeImpl(const engine::Statement& statement,
                                     bool allow_indexes) const {
  XIA_FAULT_INJECT(fault::points::kOptimizerPlan);
  XIA_RETURN_IF_ERROR(fault::CheckInterrupt(options_.deadline));
  optimize_calls_.Add(1);
  XIA_OBS_COUNT("xia.optimizer.optimize_calls", 1);
  if (statement.is_insert()) return PlanInsert(statement);
  if (statement.is_delete()) return PlanDelete(statement, allow_indexes);
  if (statement.is_update()) return PlanUpdate(statement, allow_indexes);
  auto normalized = engine::Normalize(statement);
  if (!normalized.ok()) return normalized.status();
  return PlanNormalizedQuery(*normalized, allow_indexes);
}

Result<Plan> Optimizer::Optimize(const engine::Statement& statement) const {
  return OptimizeImpl(statement, /*allow_indexes=*/true);
}

Result<Plan> Optimizer::OptimizeWithoutIndexes(
    const engine::Statement& statement) const {
  return OptimizeImpl(statement, /*allow_indexes=*/false);
}

Result<std::vector<xpath::IndexPattern>> Optimizer::EnumerateIndexes(
    const engine::Statement& statement) const {
  XIA_FAULT_INJECT(fault::points::kOptimizerPlan);
  XIA_RETURN_IF_ERROR(fault::CheckInterrupt(options_.deadline));
  optimize_calls_.Add(1);
  XIA_OBS_COUNT("xia.optimizer.optimize_calls", 1);
  XIA_OBS_COUNT("xia.optimizer.enumerate_calls", 1);
  if (statement.is_insert()) return std::vector<xpath::IndexPattern>{};

  Result<engine::NormalizedQuery> normalized =
      statement.is_delete()
          ? engine::NormalizeDeleteMatch(statement)
          : (statement.is_update() ? engine::NormalizeUpdateMatch(statement)
                                   : engine::Normalize(statement));
  if (!normalized.ok()) return normalized.status();

  // Plant the //* virtual universal index (one per value type) and run the
  // index-matching step against it. Everything indexable matches the
  // universal pattern; what comes out is the set of rewritten,
  // predicate-aware patterns of the statement (§IV).
  xpath::Path universal;
  universal.Append(xpath::Axis::kDescendant, "*");
  const xpath::IndexPattern universal_string{universal,
                                             xpath::ValueType::kString};
  const xpath::IndexPattern universal_numeric{universal,
                                              xpath::ValueType::kNumeric};
  const xpath::IndexPattern universal_structural{
      universal, xpath::ValueType::kString, /*structural=*/true};

  std::vector<xpath::IndexPattern> out;
  for (const IndexablePredicate& pred :
       ExtractIndexablePredicates(*normalized)) {
    const xpath::IndexPattern& matched_against =
        pred.existence
            ? universal_structural
            : (pred.type == xpath::ValueType::kNumeric ? universal_numeric
                                                       : universal_string);
    if (!xpath::Covers(matched_against.path, pred.pattern)) continue;
    xpath::IndexPattern candidate = pred.AsIndexPattern();
    if (std::find(out.begin(), out.end(), candidate) == out.end()) {
      out.push_back(std::move(candidate));
    }
  }
  return out;
}

double Optimizer::MaintenanceCost(
    const engine::Statement& statement,
    const xpath::IndexPattern& index_pattern,
    const storage::IndexStats& index_stats) const {
  if (statement.is_query()) return 0.0;
  auto data_result = statistics_->Get(statement.collection());
  if (!data_result.ok()) return 0.0;
  const storage::CollectionStatistics& data = **data_result;

  if (statement.is_update()) {
    // A value update touches the index only if the index can contain the
    // updated nodes: some data path is matched by both the index pattern
    // and the update target.
    const xpath::Path& target = statement.update_spec().target;
    double affected_nodes = 0;
    for (const auto& [path_string, path_stats] : data.paths()) {
      if (xpath::MatchesLabelPath(index_pattern.path, path_stats.labels) &&
          xpath::MatchesLabelPath(target, path_stats.labels)) {
        affected_nodes += static_cast<double>(path_stats.count);
      }
    }
    if (affected_nodes == 0) return 0.0;
    auto normalized = engine::NormalizeUpdateMatch(statement);
    const double docs_touched =
        normalized.ok() ? EstimateResultDocs(*normalized, data) : 1.0;
    const double nodes_per_doc =
        data.document_count() == 0
            ? 0.0
            : affected_nodes / static_cast<double>(data.document_count());
    // Old key out, new key in: two entry operations per modified node.
    const double per_entry =
        static_cast<double>(index_stats.levels) *
            cost_model_.constants().random_page_cost *
            cost_model_.constants().maintenance_traverse_factor * 0.1 +
        cost_model_.constants().index_write_cost *
            (index_stats.avg_key_length +
             static_cast<double>(
                 cost_model_.constants().index_entry_overhead)) /
            static_cast<double>(cost_model_.constants().page_size) * 8.0;
    return 2.0 * docs_touched * nodes_per_doc * per_entry;
  }

  double docs_touched = 1.0;  // insert: one document
  if (statement.is_delete()) {
    auto normalized = engine::NormalizeDeleteMatch(statement);
    if (normalized.ok()) {
      docs_touched = EstimateResultDocs(*normalized, data);
    }
  }
  return cost_model_.MaintenanceCost(
      index_stats, static_cast<double>(data.document_count()), docs_touched);
}

}  // namespace xia::optimizer
