// Physical plan model and indexable-predicate extraction.
//
// The optimizer plans one statement at a time. For queries the plan space
// is: a collection scan; an index scan per indexable predicate with a
// matching index (plus residual re-evaluation of the full query on fetched
// documents); and index ANDing over several predicates' RID lists.

#ifndef XIA_OPTIMIZER_PLAN_H_
#define XIA_OPTIMIZER_PLAN_H_

#include <string>
#include <vector>

#include "engine/normalizer.h"
#include "xpath/path.h"

namespace xia::optimizer {

/// A value comparison in the query that an XML value index could serve,
/// rewritten to its absolute linear pattern. This is exactly the unit the
/// Enumerate Indexes mode reports (§IV): the pattern has predicates taken
/// into account (it points at the compared node) and reflects query
/// rewrites (where-clauses already folded in by the normalizer).
struct IndexablePredicate {
  /// Absolute linear pattern of the compared (or tested) nodes.
  xpath::Path pattern;
  /// Index value type implied by the literal (comparisons only).
  xpath::ValueType type = xpath::ValueType::kString;
  xpath::CompareOp op = xpath::CompareOp::kEq;
  xpath::Literal literal;
  /// Pure existence test ([path] with no comparison): servable only by a
  /// structural index on a covering pattern.
  bool existence = false;
  /// Which spine step the predicate is attached to.
  size_t spine_step = 0;

  xpath::IndexPattern AsIndexPattern() const {
    return {pattern, type, existence};
  }
  std::string ToString() const;
};

/// Extracts every indexable predicate of a normalized query: comparisons
/// other than '!=' (value indexes) and pure existence tests (structural
/// indexes).
std::vector<IndexablePredicate> ExtractIndexablePredicates(
    const engine::NormalizedQuery& query);

/// One index access within a plan.
struct PlanLeg {
  /// Catalog name of the index used.
  std::string index_name;
  /// Pattern of that index (kept for display and for virtual plans).
  xpath::IndexPattern index_pattern;
  /// True if the leg uses a virtual index (plan is not executable).
  bool index_is_virtual = false;
  /// The predicate this leg serves.
  IndexablePredicate predicate;
  /// Estimated index entries scanned.
  double est_entries = 0;
  /// Estimated distinct documents produced by this leg.
  double est_docs = 0;
  /// Estimated cost of the index access itself (no fetch).
  double est_access_cost = 0;
};

/// A physical plan with its cost estimate.
struct Plan {
  enum class Kind {
    kCollectionScan = 0,
    kIndexScan,
    kIndexAnd,
    kInsert,
    kDelete,
    kUpdate,
  };

  Kind kind = Kind::kCollectionScan;
  /// Index legs (empty for collection scans and inserts).
  std::vector<PlanLeg> legs;
  /// Total estimated cost in timerons.
  double est_cost = 0;
  /// Estimated documents in the result (queries) or affected (deletes).
  double est_result_docs = 0;
  /// True if any leg references a virtual index.
  bool uses_virtual_index = false;

  /// EXPLAIN-style one-line rendering.
  std::string Describe() const;
};

}  // namespace xia::optimizer

#endif  // XIA_OPTIMIZER_PLAN_H_
