#include "optimizer/plan.h"

#include "util/string_util.h"

namespace xia::optimizer {

std::string IndexablePredicate::ToString() const {
  if (existence) return "exists " + pattern.ToString();
  return pattern.ToString() + " " + xpath::CompareOpToString(op) + " " +
         literal.ToString() + " (" + xpath::ValueTypeToString(type) + ")";
}

std::vector<IndexablePredicate> ExtractIndexablePredicates(
    const engine::NormalizedQuery& query) {
  std::vector<IndexablePredicate> out;
  const auto& steps = query.path.steps();
  for (size_t i = 0; i < steps.size(); ++i) {
    for (const xpath::Predicate& pred : steps[i].predicates) {
      if (pred.is_comparison() && *pred.op == xpath::CompareOp::kNe) {
        continue;  // '!=': not indexable
      }
      IndexablePredicate ip;
      std::vector<xpath::Step> pattern_steps;
      for (size_t k = 0; k <= i; ++k) pattern_steps.push_back(steps[k].step);
      for (const xpath::Step& rs : pred.relative_steps) {
        pattern_steps.push_back(rs);
      }
      ip.pattern = xpath::Path(std::move(pattern_steps));
      if (pred.is_comparison()) {
        ip.type = pred.literal.type;
        ip.op = *pred.op;
        ip.literal = pred.literal;
      } else {
        // Existence predicate on a relative path. A bare "[.]" self test is
        // vacuous and stays non-indexable.
        if (pred.relative_steps.empty()) continue;
        ip.existence = true;
      }
      ip.spine_step = i;
      out.push_back(std::move(ip));
    }
  }
  return out;
}

std::string Plan::Describe() const {
  switch (kind) {
    case Kind::kCollectionScan:
      return StringPrintf("COLLECTION-SCAN cost=%.1f rows=%.1f", est_cost,
                          est_result_docs);
    case Kind::kInsert:
      return StringPrintf("INSERT cost=%.1f", est_cost);
    case Kind::kDelete:
    case Kind::kUpdate: {
      std::string out =
          StringPrintf("%s cost=%.1f rows=%.1f",
                       kind == Kind::kDelete ? "DELETE" : "UPDATE", est_cost,
                       est_result_docs);
      for (const auto& leg : legs) {
        out += " via " + leg.index_name + " [" +
               leg.index_pattern.path.ToString() + "]";
      }
      return out;
    }
    case Kind::kIndexScan:
    case Kind::kIndexAnd: {
      std::string out = (kind == Kind::kIndexScan) ? "INDEX-SCAN" : "INDEX-AND";
      out += StringPrintf(" cost=%.1f rows=%.1f", est_cost, est_result_docs);
      for (const auto& leg : legs) {
        out += StringPrintf(
            " {%s%s [%s] for %s entries=%.1f}", leg.index_name.c_str(),
            leg.index_is_virtual ? " (virtual)" : "",
            leg.index_pattern.path.ToString().c_str(),
            leg.predicate.ToString().c_str(), leg.est_entries);
      }
      return out;
    }
  }
  return "?";
}

}  // namespace xia::optimizer
