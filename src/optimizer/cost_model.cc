#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace xia::optimizer {

namespace {

// Number of predicate comparisons a query performs per candidate node.
double PredicateCount(const engine::NormalizedQuery& query) {
  double n = 0;
  for (const auto& qs : query.path.steps()) {
    n += static_cast<double>(qs.predicates.size());
  }
  return n;
}

}  // namespace

double CostModel::PerDocumentEvalCost(
    const storage::CollectionStatistics& data,
    const engine::NormalizedQuery& query) const {
  const double nodes = data.avg_nodes_per_doc();
  // Navigation touches each node at most once per spine; predicates add
  // comparisons on candidate nodes (approximated as one per node fraction).
  return nodes * cc_.cpu_node_cost +
         PredicateCount(query) * cc_.cpu_compare_cost * std::max(1.0, nodes * 0.1);
}

double CostModel::CollectionScanCost(
    const storage::CollectionStatistics& data,
    const engine::NormalizedQuery& query) const {
  XIA_OBS_COUNT("xia.optimizer.cost_model.evaluations", 1);
  const double io =
      static_cast<double>(data.data_pages()) * cc_.seq_page_cost;
  const double cpu = static_cast<double>(data.document_count()) *
                     PerDocumentEvalCost(data, query);
  return io + cpu;
}

double CostModel::IndexAccessCost(uint32_t levels, double entries_scanned,
                                  double avg_entry_bytes) const {
  XIA_OBS_COUNT("xia.optimizer.cost_model.evaluations", 1);
  const double descend = static_cast<double>(levels) * cc_.random_page_cost;
  const double entry_bytes =
      avg_entry_bytes + static_cast<double>(cc_.index_entry_overhead);
  const double leaf_pages = std::max(
      1.0, entries_scanned * entry_bytes / static_cast<double>(cc_.page_size));
  return descend + leaf_pages * cc_.seq_page_cost +
         entries_scanned * cc_.cpu_index_entry_cost;
}

double CostModel::FetchAndResidualCost(
    double docs, const storage::CollectionStatistics& data,
    const engine::NormalizedQuery& query) const {
  return docs * (cc_.fetch_doc_cost + PerDocumentEvalCost(data, query));
}

double CostModel::RidIntersectionCost(double total_entries) const {
  return total_entries * cc_.cpu_rid_intersect_cost;
}

double CostModel::DocumentInsertCost(double doc_bytes,
                                     double doc_nodes) const {
  const double pages =
      std::max(1.0, doc_bytes / static_cast<double>(cc_.page_size));
  return pages * cc_.index_write_cost + doc_nodes * cc_.cpu_node_cost;
}

double CostModel::DocumentRemoveCost(double docs, double avg_doc_bytes) const {
  const double pages_per_doc =
      std::max(1.0, avg_doc_bytes / static_cast<double>(cc_.page_size));
  return docs * pages_per_doc * cc_.index_write_cost;
}

double CostModel::MaintenanceCost(const storage::IndexStats& index_stats,
                                  double collection_docs,
                                  double docs_touched) const {
  XIA_OBS_COUNT("xia.optimizer.cost_model.evaluations", 1);
  if (docs_touched <= 0) return 0.0;
  const double entries_per_doc =
      collection_docs <= 0
          ? 0.0
          : static_cast<double>(index_stats.entry_count) / collection_docs;
  const double entries = entries_per_doc * docs_touched;
  // Each maintained entry descends the tree and dirties a leaf page share.
  const double per_entry =
      static_cast<double>(index_stats.levels) * cc_.random_page_cost *
          cc_.maintenance_traverse_factor * 0.1 +
      cc_.index_write_cost *
          (index_stats.avg_key_length +
           static_cast<double>(cc_.index_entry_overhead)) /
          static_cast<double>(cc_.page_size) * 8.0;
  return entries * per_entry;
}

}  // namespace xia::optimizer
