#include "optimizer/selectivity.h"

#include <algorithm>

namespace xia::optimizer {

namespace {

double Clamp01(double v) {
  return std::max(kMinSelectivity, std::min(1.0, v));
}

double NumericRangeFraction(double lo, double hi, xpath::CompareOp op,
                            double v) {
  if (hi <= lo) {
    // Degenerate domain: everything has one value.
    switch (op) {
      case xpath::CompareOp::kLt:
        return v > lo ? 1.0 : 0.0;
      case xpath::CompareOp::kLe:
        return v >= lo ? 1.0 : 0.0;
      case xpath::CompareOp::kGt:
        return v < lo ? 1.0 : 0.0;
      case xpath::CompareOp::kGe:
        return v <= lo ? 1.0 : 0.0;
      default:
        return 1.0;
    }
  }
  const double width = hi - lo;
  switch (op) {
    case xpath::CompareOp::kLt:
    case xpath::CompareOp::kLe:
      return (v - lo) / width;
    case xpath::CompareOp::kGt:
    case xpath::CompareOp::kGe:
      return (hi - v) / width;
    default:
      return 1.0;
  }
}

}  // namespace

double ValueSelectivity(const storage::IndexStats& stats, xpath::CompareOp op,
                        const xpath::Literal& literal) {
  if (stats.entry_count == 0) return kMinSelectivity;
  const double distinct =
      std::max<double>(1.0, static_cast<double>(stats.distinct_keys));
  switch (op) {
    case xpath::CompareOp::kEq:
      return Clamp01(1.0 / distinct);
    case xpath::CompareOp::kNe:
      return Clamp01(1.0 - 1.0 / distinct);
    case xpath::CompareOp::kLt:
    case xpath::CompareOp::kLe:
    case xpath::CompareOp::kGt:
    case xpath::CompareOp::kGe: {
      if (literal.type == xpath::ValueType::kNumeric) {
        // Prefer the equi-depth histogram; fall back to uniformity over
        // [min, max] when histograms are disabled.
        if (stats.numeric_quantiles.size() >= 2) {
          const double below =
              storage::HistogramCdf(stats.numeric_quantiles,
                                    literal.numeric_value);
          const bool less =
              op == xpath::CompareOp::kLt || op == xpath::CompareOp::kLe;
          return Clamp01(less ? below : 1.0 - below);
        }
        return Clamp01(NumericRangeFraction(stats.min_numeric,
                                            stats.max_numeric, op,
                                            literal.numeric_value));
      }
      return kDefaultStringRangeSelectivity;
    }
  }
  return 1.0;
}

double PredicateSelectivity(const IndexablePredicate& pred,
                            const storage::CollectionStatistics& data_stats,
                            const storage::CostConstants& cc) {
  const storage::IndexStats pattern_stats =
      data_stats.DeriveIndexStats(pred.AsIndexPattern(), cc);
  return ValueSelectivity(pattern_stats, pred.op, pred.literal);
}

}  // namespace xia::optimizer
