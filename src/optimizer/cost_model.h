// The cost model: timeron estimates for plan operators and for index
// maintenance.
//
// Mirrors the structure (not the coefficients) of a disk-based XML
// optimizer's model: I/O by pages with sequential/random asymmetry, CPU by
// nodes navigated and comparisons evaluated, index access by levels plus
// leaf pages.

#ifndef XIA_OPTIMIZER_COST_MODEL_H_
#define XIA_OPTIMIZER_COST_MODEL_H_

#include "engine/normalizer.h"
#include "engine/query.h"
#include "storage/cost_constants.h"
#include "storage/statistics.h"

namespace xia::optimizer {

/// Stateless cost formulas parameterized by CostConstants.
class CostModel {
 public:
  explicit CostModel(const storage::CostConstants& cc) : cc_(cc) {}

  const storage::CostConstants& constants() const { return cc_; }

  /// Full scan of a collection evaluating `query` on every document.
  double CollectionScanCost(const storage::CollectionStatistics& data,
                            const engine::NormalizedQuery& query) const;

  /// One index access: descend `levels`, then read the leaf pages holding
  /// `entries_scanned` entries of `avg_entry_bytes` each.
  double IndexAccessCost(uint32_t levels, double entries_scanned,
                         double avg_entry_bytes) const;

  /// Fetch + residual re-evaluation of the query on `docs` candidate
  /// documents.
  double FetchAndResidualCost(double docs,
                              const storage::CollectionStatistics& data,
                              const engine::NormalizedQuery& query) const;

  /// CPU cost of intersecting RID lists with the given total entries.
  double RidIntersectionCost(double total_entries) const;

  /// Cost of inserting a document with the given bytes and node count
  /// (excluding index maintenance, which the advisor charges separately —
  /// §III: "In some database systems, such as DB2, the optimizer cost
  /// estimates do not include the cost of updating indexes").
  double DocumentInsertCost(double doc_bytes, double doc_nodes) const;

  /// Cost of removing `docs` documents of average size once found.
  double DocumentRemoveCost(double docs, double avg_doc_bytes) const;

  /// Maintenance cost mc(x, s) of index x (described by `index_stats`,
  /// built over a collection with `collection_docs` documents) for a
  /// statement that inserts or deletes `docs_touched` documents. Zero for
  /// query statements is enforced by the caller.
  double MaintenanceCost(const storage::IndexStats& index_stats,
                         double collection_docs, double docs_touched) const;

  /// CPU cost of evaluating the query once against one document.
  double PerDocumentEvalCost(const storage::CollectionStatistics& data,
                             const engine::NormalizedQuery& query) const;

 private:
  const storage::CostConstants& cc_;
};

}  // namespace xia::optimizer

#endif  // XIA_OPTIMIZER_COST_MODEL_H_
