// Selectivity estimation from statistics.
//
// Two flavours are needed:
//  * value selectivity against a specific *index's* key distribution —
//    determines how much of the index a lookup scans;
//  * value selectivity against the *predicate pattern's* data distribution —
//    determines how many truly-qualifying nodes (and documents) come out.

#ifndef XIA_OPTIMIZER_SELECTIVITY_H_
#define XIA_OPTIMIZER_SELECTIVITY_H_

#include "optimizer/plan.h"
#include "storage/statistics.h"

namespace xia::optimizer {

/// Default selectivity for range predicates over string domains (no
/// histogram information for lexicographic ranges).
inline constexpr double kDefaultStringRangeSelectivity = 1.0 / 3.0;
/// Floor applied to every estimate to avoid zero-cost plans.
inline constexpr double kMinSelectivity = 1e-9;

/// Fraction of keys in a domain described by `stats` that satisfy
/// (op, literal). Uses uniformity over [min, max] for numeric ranges and
/// 1/distinct for equality.
double ValueSelectivity(const storage::IndexStats& stats, xpath::CompareOp op,
                        const xpath::Literal& literal);

/// Selectivity of `pred` against the value distribution of its own pattern
/// in the data (derives pattern statistics on the fly).
double PredicateSelectivity(const IndexablePredicate& pred,
                            const storage::CollectionStatistics& data_stats,
                            const storage::CostConstants& cc);

}  // namespace xia::optimizer

#endif  // XIA_OPTIMIZER_SELECTIVITY_H_
