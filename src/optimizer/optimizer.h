// The cost-based optimizer facade, including the two what-if modes the
// XML Index Advisor requires (§III):
//
//  * Enumerate Indexes mode — plants a virtual *universal* index (pattern
//    //*) and reports every query pattern the index-matching step matched
//    against it: "if all possible indexes were available, which rewritten
//    query patterns would benefit from them?" (§IV).
//
//  * Evaluate Indexes mode — ordinary cost-based optimization, but against
//    a catalog populated with virtual indexes, yielding the estimated cost
//    of each statement under a hypothetical configuration.
//
// Optimizer calls are counted so experiments can measure the §VI-C call
// reduction.
//
// Thread affinity: an Optimizer instance is immutable after construction —
// the planning entry points (Optimize, OptimizeWithoutIndexes,
// EnumerateIndexes, MaintenanceCost) are const, never mutate the catalog,
// and record calls through an atomic obs::Counter. Concurrent planning is
// therefore safe as long as each thread either shares a catalog that is
// not concurrently mutated or (as the parallel advisor does) owns a
// private scratch catalog per worker. Virtual-index what-if mutations go
// through storage::Catalog, so "one catalog + one optimizer per worker" is
// the unit of isolation (DESIGN §12).

#ifndef XIA_OPTIMIZER_OPTIMIZER_H_
#define XIA_OPTIMIZER_OPTIMIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fault/deadline.h"
#include "obs/metrics.h"
#include "engine/normalizer.h"
#include "engine/query.h"
#include "optimizer/cost_model.h"
#include "optimizer/plan.h"
#include "storage/catalog.h"
#include "storage/document_store.h"
#include "storage/statistics.h"
#include "util/status.h"

namespace xia::optimizer {

/// Cost-based optimizer over one catalog.
class Optimizer {
 public:
  /// Planning options.
  struct Options {
    /// Consider real (physical) indexes during matching.
    bool use_real_indexes = true;
    /// Consider virtual indexes during matching.
    bool use_virtual_indexes = true;
    /// Allow multi-index (index-ANDing) plans.
    bool enable_index_anding = true;
    /// Planning budget: once expired, Optimize / EnumerateIndexes return
    /// kDeadlineExceeded at entry instead of starting new enumeration
    /// work. Defaults to infinite, which costs one branch per call.
    fault::Deadline deadline;
  };

  Optimizer(const storage::DocumentStore* store,
            const storage::Catalog* catalog,
            const storage::StatisticsCatalog* statistics,
            Options options)
      : store_(store),
        catalog_(catalog),
        statistics_(statistics),
        options_(options),
        cost_model_(catalog->cost_constants()) {}

  /// Constructs with default options.
  Optimizer(const storage::DocumentStore* store,
            const storage::Catalog* catalog,
            const storage::StatisticsCatalog* statistics)
      : Optimizer(store, catalog, statistics, Options()) {}

  /// Plans a statement and returns the best plan with its cost estimate.
  Result<Plan> Optimize(const engine::Statement& statement) const;

  /// Plans a statement pretending no indexes exist (the baseline cost
  /// s_old of §III).
  Result<Plan> OptimizeWithoutIndexes(const engine::Statement& statement) const;

  /// Enumerate Indexes mode: candidate index patterns for one statement.
  /// Queries and deletes yield patterns; inserts yield none.
  Result<std::vector<xpath::IndexPattern>> EnumerateIndexes(
      const engine::Statement& statement) const;

  /// Maintenance cost mc(x, s) of the index with the given pattern and
  /// derived statistics under statement `s` (§III). Zero for queries.
  /// Inserts and deletes maintain every index of the statement's
  /// collection; value updates only maintain indexes whose pattern can
  /// reach the updated nodes.
  double MaintenanceCost(const engine::Statement& statement,
                         const xpath::IndexPattern& index_pattern,
                         const storage::IndexStats& index_stats) const;

  const CostModel& cost_model() const { return cost_model_; }

  /// Number of Optimize/EnumerateIndexes invocations since construction or
  /// the last ResetCallCount. Backed by an obs::Counter (every call also
  /// feeds the process-wide `xia.optimizer.optimize_calls` metric); this
  /// accessor stays for API compatibility.
  uint64_t optimize_calls() const { return optimize_calls_.value(); }
  void ResetCallCount() { optimize_calls_.Reset(); }

 private:
  Result<Plan> PlanNormalizedQuery(const engine::NormalizedQuery& query,
                                   bool allow_indexes) const;
  Result<Plan> PlanInsert(const engine::Statement& statement) const;
  Result<Plan> PlanDelete(const engine::Statement& statement,
                          bool allow_indexes) const;
  Result<Plan> PlanUpdate(const engine::Statement& statement,
                          bool allow_indexes) const;
  Result<Plan> OptimizeImpl(const engine::Statement& statement,
                            bool allow_indexes) const;

  /// Estimated documents that truly satisfy the normalized query.
  double EstimateResultDocs(const engine::NormalizedQuery& query,
                            const storage::CollectionStatistics& data) const;

  const storage::DocumentStore* store_;
  const storage::Catalog* catalog_;
  const storage::StatisticsCatalog* statistics_;
  Options options_;
  CostModel cost_model_;
  /// Per-instance call count (atomic, so const planning entry points can
  /// record without the old mutable-integer data race).
  mutable obs::Counter optimize_calls_;
};

}  // namespace xia::optimizer

#endif  // XIA_OPTIMIZER_OPTIMIZER_H_
