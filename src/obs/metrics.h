// xia::obs — process-wide metrics for the advisor/optimizer/storage stack.
//
// A MetricsRegistry holds named counters, gauges, and fixed-bucket
// histograms. Metric objects are created on first use, never destroyed,
// and updated with relaxed atomics, so instrumented hot paths pay one
// fetch_add per event and nothing else; the registry mutex is only taken
// at registration and snapshot time. Naming convention:
// `xia.<layer>.<name>` (e.g. `xia.storage.btree.node_reads`).
//
// Instrument call sites with the XIA_OBS_* macros below. Each macro
// resolves the registry lookup once per call site (function-local static)
// and compiles to nothing when the tree is configured with -DXIA_OBS_OFF
// (CMake option XIA_OBS_OFF), which is how the no-overhead configuration
// is built and benchmarked.

#ifndef XIA_OBS_METRICS_H_
#define XIA_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace xia::obs {

/// True unless the tree was compiled with -DXIA_OBS_OFF. Tests use this to
/// gate assertions on instrumentation side effects.
#ifdef XIA_OBS_OFF
inline constexpr bool kObsEnabled = false;
#else
inline constexpr bool kObsEnabled = true;
#endif

/// Monotonic event counter.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-value gauge (stored as double; counters cover integral rates).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts observations <= bounds[i]; one
/// implicit overflow bucket counts the rest. Bounds are fixed at
/// registration and never change.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Count in bucket i (i == bounds().size() is the overflow bucket).
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void Reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Point-in-time value of one metric.
struct MetricValue {
  enum class Kind { kCounter, kGauge, kHistogram };

  std::string name;
  Kind kind = Kind::kCounter;
  uint64_t counter = 0;  // kCounter
  double gauge = 0;      // kGauge
  // kHistogram:
  std::vector<double> bounds;
  std::vector<uint64_t> buckets;  // bounds.size() + 1 (last = overflow)
  uint64_t count = 0;
  double sum = 0;
};

/// A consistent-enough copy of the registry (each metric is read
/// atomically; the set of metrics is read under the registry lock).
struct MetricsSnapshot {
  std::vector<MetricValue> metrics;  // sorted by name

  const MetricValue* Find(const std::string& name) const;

  /// Human-readable aligned table.
  std::string ToTable() const;
  /// One JSON object: {"metrics": [{"name": ..., ...}, ...]}.
  std::string ToJson() const;
  /// Prometheus text exposition format ('.' becomes '_' in names).
  std::string ToPrometheus() const;
};

/// Thread-safe registry of named metrics. Returned pointers are stable for
/// the registry's lifetime (metrics are never deleted; ResetAll only zeroes
/// values), so call sites may cache them.
class MetricsRegistry {
 public:
  /// The process-wide registry every XIA_OBS_* macro records into.
  static MetricsRegistry& Global();

  /// Finds or creates the named metric. A name registered as one kind must
  /// not be requested as another (asserted in debug builds; the first
  /// registration wins otherwise).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` must be strictly increasing; it is fixed by whichever call
  /// registers the histogram first.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds);

  MetricsSnapshot Snapshot() const;
  /// Zeroes every metric's value, keeping registrations (and pointers)
  /// intact.
  void ResetAll();
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Default latency buckets (seconds): 1us .. ~100s, decade thirds.
std::vector<double> LatencyBuckets();

}  // namespace xia::obs

#ifdef XIA_OBS_OFF

#define XIA_OBS_COUNT(name, n) ((void)0)
#define XIA_OBS_GAUGE_SET(name, v) ((void)0)
#define XIA_OBS_OBSERVE_LATENCY(name, seconds) ((void)0)

#else

/// Adds `n` to the process-wide counter `name`.
#define XIA_OBS_COUNT(name, n)                                            \
  do {                                                                    \
    static ::xia::obs::Counter* xia_obs_counter_ =                        \
        ::xia::obs::MetricsRegistry::Global().GetCounter(name);           \
    xia_obs_counter_->Add(static_cast<uint64_t>(n));                      \
  } while (0)

/// Sets the process-wide gauge `name` to `v`.
#define XIA_OBS_GAUGE_SET(name, v)                                        \
  do {                                                                    \
    static ::xia::obs::Gauge* xia_obs_gauge_ =                            \
        ::xia::obs::MetricsRegistry::Global().GetGauge(name);             \
    xia_obs_gauge_->Set(static_cast<double>(v));                          \
  } while (0)

/// Records `seconds` into the latency histogram `name`.
#define XIA_OBS_OBSERVE_LATENCY(name, seconds)                            \
  do {                                                                    \
    static ::xia::obs::Histogram* xia_obs_histogram_ =                    \
        ::xia::obs::MetricsRegistry::Global().GetHistogram(               \
            name, ::xia::obs::LatencyBuckets());                          \
    xia_obs_histogram_->Observe(static_cast<double>(seconds));            \
  } while (0)

#endif  // XIA_OBS_OFF

#endif  // XIA_OBS_METRICS_H_
