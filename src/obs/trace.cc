#include "obs/trace.h"

#include "util/string_util.h"

namespace xia::obs {

const SpanRecord* Trace::Find(const std::string& name) const {
  for (const SpanRecord& s : spans) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

double Trace::PhaseSeconds() const {
  double total = 0;
  for (const SpanRecord& s : spans) {
    if (s.depth == 0) total += s.seconds;
  }
  return total;
}

uint64_t Trace::PhaseTrackedCalls() const {
  uint64_t total = 0;
  for (const SpanRecord& s : spans) {
    if (s.depth == 0) total += s.tracked_calls;
  }
  return total;
}

std::string Trace::ToString() const {
  std::string out;
  for (const SpanRecord& s : spans) {
    std::string label(static_cast<size_t>(s.depth) * 2, ' ');
    label += s.name;
    out += StringPrintf("%-28s %10.6fs %8llu calls", label.c_str(),
                        s.seconds,
                        static_cast<unsigned long long>(s.tracked_calls));
    if (s.items >= 0) out += StringPrintf("  %g items", s.items);
    if (s.threads > 1) out += StringPrintf("  x%d threads", s.threads);
    out += "\n";
  }
  return out;
}

std::string Trace::ToJson() const {
  std::string out = "[";
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    if (i > 0) out += ",";
    out += StringPrintf(
        "{\"name\":\"%s\",\"depth\":%d,\"seconds\":%g,\"calls\":%llu",
        s.name.c_str(), s.depth, s.seconds,
        static_cast<unsigned long long>(s.tracked_calls));
    if (s.items >= 0) out += StringPrintf(",\"items\":%g", s.items);
    if (s.threads > 1) out += StringPrintf(",\"threads\":%d", s.threads);
    out += "}";
  }
  out += "]";
  return out;
}

}  // namespace xia::obs
