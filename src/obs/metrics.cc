#include "obs/metrics.h"

#include <algorithm>
#include <cassert>

#include "util/string_util.h"

namespace xia::obs {

namespace {

// Atomic double accumulate (no std::atomic<double>::fetch_add until C++20
// is fully implemented everywhere; CAS loop keeps it portable).
void AtomicAdd(std::atomic<double>* target, double v) {
  double cur = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(cur, cur + v,
                                        std::memory_order_relaxed)) {
  }
}

// Prometheus metric names use '_' where ours use '.'.
std::string PrometheusName(const std::string& name) {
  std::string out = name;
  std::replace(out.begin(), out.end(), '.', '_');
  return out;
}

// Shortest %g rendering; JSON-safe (never produces inf/nan from our
// inputs, which are wall times and counter-derived values).
std::string Num(double v) { return StringPrintf("%g", v); }

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    assert(bounds_[i - 1] < bounds_[i]);
  }
}

void Histogram::Observe(double v) {
  size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, v);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: instrumented call sites cache metric pointers in
  // function-local statics, which may be touched during static teardown.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(gauges_.find(name) == gauges_.end());
  assert(histograms_.find(name) == histograms_.end());
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(counters_.find(name) == counters_.end());
  assert(histograms_.find(name) == histograms_.end());
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(counters_.find(name) == counters_.end());
  assert(gauges_.find(name) == gauges_.end());
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.metrics.reserve(counters_.size() + gauges_.size() +
                       histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricValue v;
    v.name = name;
    v.kind = MetricValue::Kind::kCounter;
    v.counter = c->value();
    snap.metrics.push_back(std::move(v));
  }
  for (const auto& [name, g] : gauges_) {
    MetricValue v;
    v.name = name;
    v.kind = MetricValue::Kind::kGauge;
    v.gauge = g->value();
    snap.metrics.push_back(std::move(v));
  }
  for (const auto& [name, h] : histograms_) {
    MetricValue v;
    v.name = name;
    v.kind = MetricValue::Kind::kHistogram;
    v.bounds = h->bounds();
    v.buckets.resize(v.bounds.size() + 1);
    for (size_t i = 0; i < v.buckets.size(); ++i) v.buckets[i] = h->bucket(i);
    v.count = h->count();
    v.sum = h->sum();
    snap.metrics.push_back(std::move(v));
  }
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  return snap;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [_, c] : counters_) c->Reset();
  for (auto& [_, g] : gauges_) g->Reset();
  for (auto& [_, h] : histograms_) h->Reset();
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

const MetricValue* MetricsSnapshot::Find(const std::string& name) const {
  for (const MetricValue& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

std::string MetricsSnapshot::ToTable() const {
  std::string out;
  out += StringPrintf("%-52s %-9s %s\n", "metric", "kind", "value");
  for (const MetricValue& m : metrics) {
    switch (m.kind) {
      case MetricValue::Kind::kCounter:
        out += StringPrintf("%-52s %-9s %llu\n", m.name.c_str(), "counter",
                            static_cast<unsigned long long>(m.counter));
        break;
      case MetricValue::Kind::kGauge:
        out += StringPrintf("%-52s %-9s %g\n", m.name.c_str(), "gauge",
                            m.gauge);
        break;
      case MetricValue::Kind::kHistogram:
        out += StringPrintf(
            "%-52s %-9s count=%llu sum=%g avg=%g\n", m.name.c_str(), "histo",
            static_cast<unsigned long long>(m.count), m.sum,
            m.count == 0 ? 0.0 : m.sum / static_cast<double>(m.count));
        break;
    }
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const MetricValue& m : metrics) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + m.name + "\"";
    switch (m.kind) {
      case MetricValue::Kind::kCounter:
        out += StringPrintf(",\"kind\":\"counter\",\"value\":%llu",
                            static_cast<unsigned long long>(m.counter));
        break;
      case MetricValue::Kind::kGauge:
        out += ",\"kind\":\"gauge\",\"value\":" + Num(m.gauge);
        break;
      case MetricValue::Kind::kHistogram: {
        out += StringPrintf(",\"kind\":\"histogram\",\"count\":%llu",
                            static_cast<unsigned long long>(m.count));
        out += ",\"sum\":" + Num(m.sum) + ",\"buckets\":[";
        for (size_t i = 0; i < m.buckets.size(); ++i) {
          if (i > 0) out += ",";
          const std::string le =
              i < m.bounds.size() ? Num(m.bounds[i]) : "\"+Inf\"";
          out += StringPrintf("{\"le\":%s,\"count\":%llu}", le.c_str(),
                              static_cast<unsigned long long>(m.buckets[i]));
        }
        out += "]";
        break;
      }
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::string MetricsSnapshot::ToPrometheus() const {
  std::string out;
  for (const MetricValue& m : metrics) {
    const std::string name = PrometheusName(m.name);
    switch (m.kind) {
      case MetricValue::Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += StringPrintf("%s %llu\n", name.c_str(),
                            static_cast<unsigned long long>(m.counter));
        break;
      case MetricValue::Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + Num(m.gauge) + "\n";
        break;
      case MetricValue::Kind::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        uint64_t cumulative = 0;
        for (size_t i = 0; i < m.buckets.size(); ++i) {
          cumulative += m.buckets[i];
          const std::string le =
              i < m.bounds.size() ? Num(m.bounds[i]) : "+Inf";
          out += StringPrintf("%s_bucket{le=\"%s\"} %llu\n", name.c_str(),
                              le.c_str(),
                              static_cast<unsigned long long>(cumulative));
        }
        out += name + "_sum " + Num(m.sum) + "\n";
        out += StringPrintf("%s_count %llu\n", name.c_str(),
                            static_cast<unsigned long long>(m.count));
        break;
      }
    }
  }
  return out;
}

std::vector<double> LatencyBuckets() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 2.5e-2, 1e-1, 5e-1, 2.5, 10.0, 100.0};
}

}  // namespace xia::obs
