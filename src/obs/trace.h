// xia::obs — hierarchical tracing of the advisor pipeline.
//
// A Tracer accumulates SpanRecords; a ScopedSpan opens a span on
// construction and seals it (wall time, optimizer-call delta) on
// destruction. Spans nest: a span opened while another is active records
// one level deeper, so the finished Trace reads as an indented tree in
// start order. Depth-0 spans are the pipeline phases
// (enumerate → generalize → … → search → finalize); their times tile the
// traced region, which is what lets report.cc reproduce the Fig. 3
// per-phase breakdown without external timers.
//
// Every API tolerates a null Tracer so instrumented code can run
// untraced for free.

#ifndef XIA_OBS_TRACE_H_
#define XIA_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/stopwatch.h"

namespace xia::obs {

/// One finished span.
struct SpanRecord {
  std::string name;
  /// Nesting depth; 0 for pipeline phases.
  int depth = 0;
  /// Wall-clock duration.
  double seconds = 0;
  /// Delta of the tracer's tracked counter (optimizer calls for the
  /// advisor pipeline) over the span's lifetime.
  uint64_t tracked_calls = 0;
  /// Free-form count annotation (candidates enumerated, indexes selected,
  /// …); negative when unset.
  double items = -1;
  /// Worker threads the phase ran on (parallel advising); 1 = serial.
  int threads = 1;
};

/// A finished trace: spans in start order.
struct Trace {
  std::vector<SpanRecord> spans;

  bool empty() const { return spans.empty(); }
  const SpanRecord* Find(const std::string& name) const;
  /// Sum of depth-0 span durations (the per-phase total).
  double PhaseSeconds() const;
  /// Sum of depth-0 tracked-counter deltas.
  uint64_t PhaseTrackedCalls() const;

  /// Indented human-readable tree.
  std::string ToString() const;
  /// JSON array of span objects.
  std::string ToJson() const;
};

/// Collects spans. Not thread-safe: one tracer traces one pipeline run.
class Tracer {
 public:
  Tracer() = default;

  /// Tracks `counter` (may be null): every span records the counter's
  /// delta over its lifetime. The advisor points this at
  /// `xia.optimizer.optimize_calls`.
  void TrackCounter(const Counter* counter) { tracked_ = counter; }

  /// The finished trace (spans sealed so far).
  Trace Finish() { return Trace{spans_}; }
  void Clear() {
    spans_.clear();
    depth_ = 0;
  }

 private:
  friend class ScopedSpan;

  size_t Open(std::string name) {
    SpanRecord record;
    record.name = std::move(name);
    record.depth = depth_++;
    spans_.push_back(std::move(record));
    return spans_.size() - 1;
  }

  void Seal(size_t index, double seconds, uint64_t calls, double items,
            int threads) {
    SpanRecord& record = spans_[index];
    record.seconds = seconds;
    record.tracked_calls = calls;
    record.items = items;
    record.threads = threads;
    --depth_;
  }

  uint64_t TrackedValue() const {
    return tracked_ == nullptr ? 0 : tracked_->value();
  }

  std::vector<SpanRecord> spans_;
  int depth_ = 0;
  const Counter* tracked_ = nullptr;
};

/// RAII span handle. With a null tracer every operation is a no-op.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::string name) : tracer_(tracer) {
    if (tracer_ == nullptr) return;
    calls_at_open_ = tracer_->TrackedValue();
    index_ = tracer_->Open(std::move(name));
    timer_.Restart();
  }

  ~ScopedSpan() { End(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a count annotation (last call wins).
  void AnnotateItems(double items) { items_ = items; }

  /// Records how many worker threads the span's phase ran on (parallel
  /// advising; 1 = serial).
  void AnnotateThreads(int threads) { threads_ = threads; }

  /// Seals the span early (idempotent; the destructor is then a no-op).
  void End() {
    if (tracer_ == nullptr || ended_) return;
    ended_ = true;
    tracer_->Seal(index_, timer_.ElapsedSeconds(),
                  tracer_->TrackedValue() - calls_at_open_, items_, threads_);
  }

 private:
  Tracer* tracer_;
  size_t index_ = 0;
  uint64_t calls_at_open_ = 0;
  double items_ = -1;
  int threads_ = 1;
  bool ended_ = false;
  Stopwatch timer_;
};

}  // namespace xia::obs

#endif  // XIA_OBS_TRACE_H_
